//! Asymptotic query-cost hints — the paper's IO bounds as data.
//!
//! The source paper is a menu of structures trading index size against
//! query IOs: Theorem 3.5 answers a 2D halfplane report in O(log_B n + t/B)
//! IOs from O(n/B) blocks, Theorem 5.2 pays O((n/B)^(1-1/d) + t/B) to keep
//! linear space in any dimension, and Section 6 interpolates between the
//! two for 3D halfspaces. A query planner choosing among built structures
//! (DESIGN.md §10) needs those bounds at runtime, so every structure
//! self-reports a [`CostHint`]: the *shape* of its asymptotic query cost
//! plus the instance parameters the shape is evaluated at.
//!
//! Shapes deliberately drop the output term `t/B`: every structure in the
//! workspace is output-sensitive with the *same* `t/B` reporting term, so
//! it cancels when costs are compared for one query. What remains is the
//! structural search cost, which is what separates a scan from a
//! logarithmic descent. Constant factors are *not* modeled here — the
//! engine fits them per structure with a measured probe pass
//! (`lcrs-engine`'s calibration) and multiplies them onto
//! [`CostHint::structural_reads`].

/// The asymptotic shape of one structure's per-query search cost, in page
/// reads, with the output term `t/B` omitted (common to all structures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostShape {
    /// Θ(n/B): the query scans the whole data file. `data_pages` is the
    /// exact page count of that file, so the shape is not just
    /// asymptotic — it is the true cold cost.
    Scan {
        /// Pages of the scanned file.
        data_pages: u64,
    },
    /// O(log_B n + t/B): the optimal structures (2D Theorem 3.5, 3D
    /// Theorem 4.4, k-NN Theorem 4.3). Evaluated as ln(n + 2); the base
    /// conversion to log_B is a constant factor absorbed by calibration.
    Logarithmic,
    /// O((n/B)^(1-1/d) + t/B): the Theorem 5.2 linear-size partition
    /// tree in dimension `d` (and the kd-tree/R-tree baselines, which
    /// obey the same √n̅ envelope in 2D without the worst-case proof).
    RootD {
        /// The dimension of the partition (2 ⇒ √n̅ shape).
        d: u32,
    },
    /// O(n^(num/den) · polylog n + t/B): the Section 6 size/query
    /// trade-off structures, between [`CostShape::Logarithmic`] and a
    /// full [`CostShape::RootD`] search. Evaluated as n^(num/den).
    Tradeoff {
        /// Numerator of the query exponent.
        num: u32,
        /// Denominator of the query exponent.
        den: u32,
    },
    /// `parts` independent logarithmic searches: the Section 7
    /// logarithmic-method dynamization queries every live part.
    PartsLog {
        /// Number of live parts (≥ 1 effective).
        parts: u32,
    },
}

/// One structure's self-reported query-cost bound: a [`CostShape`] plus
/// the instance size it is evaluated at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostHint {
    /// The asymptotic shape of the structural search cost.
    pub shape: CostShape,
    /// Points in the structure (the `n` of the bounds).
    pub n: u64,
    /// The query runs on an annotated aggregate path: fully-covered
    /// canonical nodes answer from persisted subtree counts/sums without
    /// enumerating leaves, so the output term vanishes *and* the
    /// structural constant differs from the reporting path. The engine's
    /// calibration fits a separate constant for hints carrying this flag.
    pub aggregate: bool,
}

impl CostHint {
    /// Hint for a structure with cost `shape` over `n` points (reporting
    /// path; see [`Self::as_aggregate`]).
    pub fn new(shape: CostShape, n: usize) -> CostHint {
        CostHint { shape, n: n as u64, aggregate: false }
    }

    /// The same shape priced on the annotated aggregate path.
    pub fn as_aggregate(mut self) -> CostHint {
        self.aggregate = true;
        self
    }

    /// The structural (output-independent) search cost predicted by the
    /// paper bound, in unnormalized "reads" — comparable across
    /// structures only after a calibration constant is fitted per
    /// structure. Always ≥ 1: even an empty structure answers a query by
    /// at least looking.
    pub fn structural_reads(&self) -> f64 {
        let n = self.n as f64;
        let v = match self.shape {
            CostShape::Scan { data_pages } => data_pages as f64,
            CostShape::Logarithmic => (n + 2.0).ln(),
            CostShape::RootD { d } => n.powf(1.0 - 1.0 / f64::from(d.max(2))),
            CostShape::Tradeoff { num, den } => n.powf(f64::from(num) / f64::from(den.max(1))),
            CostShape::PartsLog { parts } => f64::from(parts.max(1)) * (n + 2.0).ln(),
        };
        v.max(1.0)
    }

    /// Whether this structure answers queries by scanning its whole file —
    /// the "no index" routing class planners measure themselves against.
    pub fn is_scan(&self) -> bool {
        matches!(self.shape, CostShape::Scan { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_order_as_the_paper_says() {
        // At production sizes: log < n^(1/3) < √n̅ < n^(2/3) = 3D-root < scan.
        let n = 1_000_000usize;
        let pages = (n / 50) as u64; // ~B = 50 records per page
        let log = CostHint::new(CostShape::Logarithmic, n).structural_reads();
        let t13 = CostHint::new(CostShape::Tradeoff { num: 1, den: 3 }, n).structural_reads();
        let t23 = CostHint::new(CostShape::Tradeoff { num: 2, den: 3 }, n).structural_reads();
        let root2 = CostHint::new(CostShape::RootD { d: 2 }, n).structural_reads();
        let root3 = CostHint::new(CostShape::RootD { d: 3 }, n).structural_reads();
        let scan = CostHint::new(CostShape::Scan { data_pages: pages }, n).structural_reads();
        assert!(
            log < t13 && t13 < root2 && root2 < t23 && t23 < scan,
            "{log} {t13} {root2} {t23} {scan}"
        );
        assert!((t23 - root3).abs() < 1e-6, "3D root == the 2/3 trade-off exponent");
    }

    #[test]
    fn parts_scale_the_logarithmic_cost() {
        let one = CostHint::new(CostShape::PartsLog { parts: 1 }, 1000).structural_reads();
        let five = CostHint::new(CostShape::PartsLog { parts: 5 }, 1000).structural_reads();
        assert!((five / one - 5.0).abs() < 1e-9);
        assert_eq!(one, CostHint::new(CostShape::Logarithmic, 1000).structural_reads());
    }

    #[test]
    fn costs_are_positive_even_degenerate() {
        for shape in [
            CostShape::Scan { data_pages: 0 },
            CostShape::Logarithmic,
            CostShape::RootD { d: 0 },
            CostShape::Tradeoff { num: 1, den: 0 },
            CostShape::PartsLog { parts: 0 },
        ] {
            assert!(CostHint::new(shape, 0).structural_reads() >= 1.0, "{shape:?}");
        }
    }

    #[test]
    fn scan_class_is_detectable() {
        assert!(CostHint::new(CostShape::Scan { data_pages: 7 }, 10).is_scan());
        assert!(!CostHint::new(CostShape::Logarithmic, 10).is_scan());
    }
}
