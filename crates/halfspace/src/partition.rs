//! Space partitioner for sharded serving (DESIGN.md §11): split a point
//! set into S near-even shards whose regions are explicit convex cells.
//!
//! The 2D partitioner reuses the partition tree's discrete ham-sandwich
//! machinery ([`crate::ptree::hamsandwich`]): each binary split is a cut
//! line through two input points that simultaneously bisects the two
//! lexicographic halves of the current cell, so both sides end up with
//! ⌊m/2⌋ ± 1 points and the cell boundary has small integer coefficients
//! (every side test stays exact in `i128`). Degenerate inputs (duplicate
//! duals, vertical cuts) fall back to the best-balanced axis-aligned
//! split, exactly like the partition tree build itself. The 3D
//! partitioner uses axis-cycling median splits (the ham-sandwich cut is a
//! planar tool), so its cells are boxes — a special case of the same
//! constraint representation.
//!
//! A shard's [`ShardRegion2`]/[`ShardRegion3`] carries the cut
//! constraints (the convex cell, a *disjoint cover* of the input — every
//! point lies in exactly one cell, pinned by the property suite) plus the
//! bounding box of the shard's actual points. Routing uses the bbox: a
//! query may hit a shard only if its constraint can be satisfied somewhere
//! in the box, a conservative exact test with no false negatives — a
//! shard holding a reported answer is never pruned.

use lcrs_extmem::{MetaReader, MetaWriter, SnapshotError};

use crate::ptree::hamsandwich::{find_cut, strictly_below_cut};

/// One binary split of the 2D partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cut2 {
    /// The (non-vertical) ham-sandwich cut line through input points `p`
    /// and `q`; the "below" side is `strictly_below_cut(p, q, ·)` (points
    /// on the line count as above, matching the ptree partitioner).
    Line { p: (i64, i64), q: (i64, i64) },
    /// Axis-aligned fallback split; the "below" side is
    /// `coord[axis] <= t`.
    Axis { axis: u8, t: i64 },
}

impl Cut2 {
    /// Exact side test: is `r` on the "below" side of this cut?
    pub fn below(&self, r: (i64, i64)) -> bool {
        match *self {
            Cut2::Line { p, q } => strictly_below_cut(p, q, r),
            Cut2::Axis { axis, t } => coord2(r, axis) <= t,
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        match *self {
            Cut2::Line { p, q } => {
                w.bool(true);
                for v in [p.0, p.1, q.0, q.1] {
                    w.i64(v);
                }
            }
            Cut2::Axis { axis, t } => {
                w.bool(false);
                w.u64(axis as u64);
                w.i64(t);
            }
        }
    }

    fn load(r: &mut MetaReader) -> Result<Cut2, SnapshotError> {
        Ok(if r.bool()? {
            let p = (r.i64()?, r.i64()?);
            let q = (r.i64()?, r.i64()?);
            if p.0 == q.0 {
                return Err(r.error("vertical cut line in shard region"));
            }
            Cut2::Line { p, q }
        } else {
            let axis = r.u64()?;
            if axis > 1 {
                return Err(r.error(format!("2D cut axis {axis} out of range")));
            }
            Cut2::Axis { axis: axis as u8, t: r.i64()? }
        })
    }
}

fn coord2(p: (i64, i64), axis: u8) -> i64 {
    if axis == 0 {
        p.0
    } else {
        p.1
    }
}

/// One halfplane constraint of a shard's convex cell: the shard's points
/// all lie on the `below` side of `cut` (or all on the other side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellConstraint2 {
    pub cut: Cut2,
    /// Which side of the cut this cell keeps.
    pub below: bool,
}

impl CellConstraint2 {
    /// Does `r` satisfy this constraint?
    pub fn holds(&self, r: (i64, i64)) -> bool {
        self.cut.below(r) == self.below
    }
}

/// A 2D shard's region: the convex cell carved out by the recursive cuts
/// plus the bounding box of the shard's actual points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRegion2 {
    /// The cell constraints, outermost cut first. Cells of one partition
    /// are pairwise disjoint and cover the plane.
    pub constraints: Vec<CellConstraint2>,
    /// Bounding box (inclusive) of the shard's points — always a subset
    /// of the cell, and the tighter routing filter of the two.
    pub lo: (i64, i64),
    pub hi: (i64, i64),
}

impl ShardRegion2 {
    /// Exact cell membership (the constraints only — the cells of a
    /// partition assign every point of the plane to exactly one shard).
    pub fn cell_contains(&self, r: (i64, i64)) -> bool {
        self.constraints.iter().all(|c| c.holds(r))
    }

    /// Conservative routing test: can a point of this shard lie below
    /// `y = m·x + c`? Evaluates the maximum slack `m·x + c − y` over the
    /// bounding box in `i128` — exact, and never a false negative because
    /// every shard point lies inside the box.
    pub fn may_intersect_halfplane(&self, m: i64, c: i64, inclusive: bool) -> bool {
        let x = if m >= 0 { self.hi.0 } else { self.lo.0 };
        let slack = m as i128 * x as i128 + c as i128 - self.lo.1 as i128;
        if inclusive {
            slack >= 0
        } else {
            slack > 0
        }
    }

    /// Conservative routing test: can a point of this shard lie inside
    /// the disk of center `(x, y)` and squared radius `r2`? Clamps the
    /// center to the bounding box (the box point nearest the center) and
    /// compares the exact carry-aware squared distance
    /// ([`lcrs_geom::lift::dist2_carry`]) against `r2` — never a false
    /// negative because every shard point lies inside the box.
    pub fn may_intersect_disk(&self, x: i64, y: i64, r2: i64, inclusive: bool) -> bool {
        if r2 < 0 {
            return false;
        }
        let cx = x.clamp(self.lo.0, self.hi.0);
        let cy = y.clamp(self.lo.1, self.hi.1);
        let d2 = lcrs_geom::lift::dist2_carry(x, y, cx, cy);
        let r2 = (false, r2 as u128);
        if inclusive {
            d2 <= r2
        } else {
            d2 < r2
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        w.seq(self.constraints.len());
        for c in &self.constraints {
            c.cut.save(w);
            w.bool(c.below);
        }
        for v in [self.lo.0, self.lo.1, self.hi.0, self.hi.1] {
            w.i64(v);
        }
    }

    fn load(r: &mut MetaReader) -> Result<ShardRegion2, SnapshotError> {
        let n = r.seq()?;
        let mut constraints = Vec::with_capacity(n);
        for _ in 0..n {
            let cut = Cut2::load(r)?;
            constraints.push(CellConstraint2 { cut, below: r.bool()? });
        }
        let lo = (r.i64()?, r.i64()?);
        let hi = (r.i64()?, r.i64()?);
        if lo.0 > hi.0 || lo.1 > hi.1 {
            return Err(r.error("shard region bbox is inverted"));
        }
        Ok(ShardRegion2 { constraints, lo, hi })
    }
}

/// A geometry-aware partition of a 2D point set into near-even shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition2 {
    /// Per shard: indices into the input, ascending. Non-empty, disjoint,
    /// and together covering `0..n`.
    pub groups: Vec<Vec<u32>>,
    /// Per shard: its region (same order as `groups`).
    pub regions: Vec<ShardRegion2>,
}

impl Partition2 {
    /// The shard whose cell contains `r` (every point of the plane lies
    /// in exactly one cell).
    pub fn cell_of(&self, r: (i64, i64)) -> Option<usize> {
        self.regions.iter().position(|reg| reg.cell_contains(r))
    }

    /// Persist groups + regions (the engine embeds this in its shard
    /// manifest).
    pub fn save(&self, w: &mut MetaWriter) {
        w.seq(self.groups.len());
        for (group, region) in self.groups.iter().zip(&self.regions) {
            w.seq(group.len());
            for &id in group {
                w.u32(id);
            }
            region.save(w);
        }
    }

    /// Inverse of [`Self::save`].
    pub fn load(r: &mut MetaReader) -> Result<Partition2, SnapshotError> {
        let s = r.seq()?;
        let mut groups = Vec::with_capacity(s);
        let mut regions = Vec::with_capacity(s);
        for _ in 0..s {
            let len = r.seq()?;
            if len == 0 {
                return Err(r.error("empty shard group"));
            }
            groups.push((0..len).map(|_| r.u32()).collect::<Result<Vec<u32>, _>>()?);
            regions.push(ShardRegion2::load(r)?);
        }
        Ok(Partition2 { groups, regions })
    }
}

/// Split `pts` into `shards` (a power of two ≥ 1, at most `pts.len()`)
/// near-even groups by recursive ham-sandwich cuts, with best-balanced
/// axis-median fallbacks in degenerate position. Deterministic in `pts`.
///
/// With `shards == 1` the single group is the identity (input order, no
/// constraints) — a sharded deployment at S=1 behaves exactly like an
/// unsharded one.
///
/// # Panics
/// If `shards` is not a power of two, exceeds `pts.len()`, or a cell
/// degenerates to identical points that no cut can separate.
pub fn partition2(pts: &[(i64, i64)], shards: usize) -> Partition2 {
    assert!(shards >= 1 && shards.is_power_of_two(), "shard count must be a power of two");
    assert!(shards <= pts.len(), "cannot cut {} points into {shards} shards", pts.len());
    let mut groups = Vec::with_capacity(shards);
    let mut regions = Vec::with_capacity(shards);
    let all: Vec<u32> = (0..pts.len() as u32).collect();
    split2(pts, all, shards, Vec::new(), &mut groups, &mut regions);
    Partition2 { groups, regions }
}

fn split2(
    pts: &[(i64, i64)],
    mut idxs: Vec<u32>,
    shards: usize,
    constraints: Vec<CellConstraint2>,
    groups: &mut Vec<Vec<u32>>,
    regions: &mut Vec<ShardRegion2>,
) {
    if shards == 1 {
        idxs.sort_unstable();
        let xs = idxs.iter().map(|&i| pts[i as usize].0);
        let ys = idxs.iter().map(|&i| pts[i as usize].1);
        let lo = (xs.clone().min().unwrap(), ys.clone().min().unwrap());
        let hi = (xs.max().unwrap(), ys.max().unwrap());
        groups.push(idxs);
        regions.push(ShardRegion2 { constraints, lo, hi });
        return;
    }
    let cut = choose_cut2(pts, &idxs);
    let (mut below, mut above) = (Vec::new(), Vec::new());
    for &i in &idxs {
        if cut.below(pts[i as usize]) {
            below.push(i);
        } else {
            above.push(i);
        }
    }
    assert!(
        !below.is_empty() && !above.is_empty(),
        "degenerate cell: {} points no cut separates",
        idxs.len()
    );
    let mut c_below = constraints.clone();
    c_below.push(CellConstraint2 { cut, below: true });
    let mut c_above = constraints;
    c_above.push(CellConstraint2 { cut, below: false });
    split2(pts, below, shards / 2, c_below, groups, regions);
    split2(pts, above, shards / 2, c_above, groups, regions);
}

/// The cut for one cell: a ham-sandwich cut of the two lexicographic
/// halves when general position allows (both sides then hold ⌊m/2⌋ ± 1
/// points), otherwise the best-balanced axis-aligned split.
fn choose_cut2(pts: &[(i64, i64)], idxs: &[u32]) -> Cut2 {
    if idxs.len() >= 4 {
        let mut sorted: Vec<(i64, i64)> = idxs.iter().map(|&i| pts[i as usize]).collect();
        sorted.sort_unstable();
        let half = sorted.len() / 2;
        let (a, b) = sorted.split_at(half);
        if let Some((ia, ib)) = find_cut(a, b) {
            let (p, q) = (a[ia], b[ib]);
            if p.0 != q.0 {
                return Cut2::Line { p, q };
            }
        }
    }
    for axis in [0u8, 1] {
        if let Some(t) = axis_threshold(idxs.iter().map(|&i| coord2(pts[i as usize], axis))) {
            return Cut2::Axis { axis, t };
        }
    }
    panic!("degenerate cell: {} identical points cannot be split", idxs.len());
}

/// Best-balanced split threshold over a coordinate multiset: the distinct
/// value `t` whose below-count `|{v ≤ t}|` is closest to half (ties to the
/// smaller `t`), or `None` when all values are equal.
fn axis_threshold(values: impl Iterator<Item = i64>) -> Option<i64> {
    let mut vals: Vec<i64> = values.collect();
    vals.sort_unstable();
    let n = vals.len();
    let mut best: Option<(usize, i64)> = None; // (|below − half| distance ×2, t)
    let mut i = 0;
    while i < n {
        let t = vals[i];
        let below = vals.partition_point(|&v| v <= t);
        if below < n {
            let dist = (2 * below).abs_diff(n);
            if best.is_none_or(|(d, _)| dist < d) {
                best = Some((dist, t));
            }
        }
        i = below;
    }
    best.map(|(_, t)| t)
}

/// One axis-median split of the 3D partitioner; the "below" side is
/// `coord[axis] <= t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut3 {
    pub axis: u8,
    pub t: i64,
}

impl Cut3 {
    /// Exact side test.
    pub fn below(&self, r: (i64, i64, i64)) -> bool {
        coord3(r, self.axis) <= self.t
    }
}

fn coord3(p: (i64, i64, i64), axis: u8) -> i64 {
    match axis {
        0 => p.0,
        1 => p.1,
        _ => p.2,
    }
}

/// One box constraint of a 3D shard's cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellConstraint3 {
    pub cut: Cut3,
    pub below: bool,
}

impl CellConstraint3 {
    pub fn holds(&self, r: (i64, i64, i64)) -> bool {
        self.cut.below(r) == self.below
    }
}

/// A 3D shard's region: the (axis-aligned) cell plus the bounding box of
/// the shard's actual points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRegion3 {
    pub constraints: Vec<CellConstraint3>,
    pub lo: (i64, i64, i64),
    pub hi: (i64, i64, i64),
}

impl ShardRegion3 {
    /// Exact cell membership.
    pub fn cell_contains(&self, r: (i64, i64, i64)) -> bool {
        self.constraints.iter().all(|c| c.holds(r))
    }

    /// Conservative routing test: can a point of this shard lie below
    /// `z = u·x + v·y + w`? Maximum slack over the bounding box, exact
    /// in `i128`.
    pub fn may_intersect_halfspace(&self, u: i64, v: i64, w: i64, inclusive: bool) -> bool {
        let x = if u >= 0 { self.hi.0 } else { self.lo.0 };
        let y = if v >= 0 { self.hi.1 } else { self.lo.1 };
        let slack = u as i128 * x as i128 + v as i128 * y as i128 + w as i128 - self.lo.2 as i128;
        if inclusive {
            slack >= 0
        } else {
            slack > 0
        }
    }

    fn save(&self, w: &mut MetaWriter) {
        w.seq(self.constraints.len());
        for c in &self.constraints {
            w.u64(c.cut.axis as u64);
            w.i64(c.cut.t);
            w.bool(c.below);
        }
        for v in [self.lo.0, self.lo.1, self.lo.2, self.hi.0, self.hi.1, self.hi.2] {
            w.i64(v);
        }
    }

    fn load(r: &mut MetaReader) -> Result<ShardRegion3, SnapshotError> {
        let n = r.seq()?;
        let mut constraints = Vec::with_capacity(n);
        for _ in 0..n {
            let axis = r.u64()?;
            if axis > 2 {
                return Err(r.error(format!("3D cut axis {axis} out of range")));
            }
            let cut = Cut3 { axis: axis as u8, t: r.i64()? };
            constraints.push(CellConstraint3 { cut, below: r.bool()? });
        }
        let lo = (r.i64()?, r.i64()?, r.i64()?);
        let hi = (r.i64()?, r.i64()?, r.i64()?);
        if lo.0 > hi.0 || lo.1 > hi.1 || lo.2 > hi.2 {
            return Err(r.error("shard region bbox is inverted"));
        }
        Ok(ShardRegion3 { constraints, lo, hi })
    }
}

/// A partition of a 3D point set into near-even box shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition3 {
    /// Per shard: indices into the input, ascending.
    pub groups: Vec<Vec<u32>>,
    pub regions: Vec<ShardRegion3>,
}

impl Partition3 {
    /// The shard whose cell contains `r`.
    pub fn cell_of(&self, r: (i64, i64, i64)) -> Option<usize> {
        self.regions.iter().position(|reg| reg.cell_contains(r))
    }

    /// Persist groups + regions.
    pub fn save(&self, w: &mut MetaWriter) {
        w.seq(self.groups.len());
        for (group, region) in self.groups.iter().zip(&self.regions) {
            w.seq(group.len());
            for &id in group {
                w.u32(id);
            }
            region.save(w);
        }
    }

    /// Inverse of [`Self::save`].
    pub fn load(r: &mut MetaReader) -> Result<Partition3, SnapshotError> {
        let s = r.seq()?;
        let mut groups = Vec::with_capacity(s);
        let mut regions = Vec::with_capacity(s);
        for _ in 0..s {
            let len = r.seq()?;
            if len == 0 {
                return Err(r.error("empty shard group"));
            }
            groups.push((0..len).map(|_| r.u32()).collect::<Result<Vec<u32>, _>>()?);
            regions.push(ShardRegion3::load(r)?);
        }
        Ok(Partition3 { groups, regions })
    }
}

/// Split 3D `pts` into `shards` near-even box cells by axis-cycling
/// best-balanced median splits. Same contract as [`partition2`]
/// (`shards` a power of two in `1..=pts.len()`, S=1 is the identity).
pub fn partition3(pts: &[(i64, i64, i64)], shards: usize) -> Partition3 {
    assert!(shards >= 1 && shards.is_power_of_two(), "shard count must be a power of two");
    assert!(shards <= pts.len(), "cannot cut {} points into {shards} shards", pts.len());
    let mut groups = Vec::with_capacity(shards);
    let mut regions = Vec::with_capacity(shards);
    let all: Vec<u32> = (0..pts.len() as u32).collect();
    split3(pts, all, shards, 0, Vec::new(), &mut groups, &mut regions);
    Partition3 { groups, regions }
}

fn split3(
    pts: &[(i64, i64, i64)],
    mut idxs: Vec<u32>,
    shards: usize,
    depth: usize,
    constraints: Vec<CellConstraint3>,
    groups: &mut Vec<Vec<u32>>,
    regions: &mut Vec<ShardRegion3>,
) {
    if shards == 1 {
        idxs.sort_unstable();
        let get = |axis| idxs.iter().map(move |&i| coord3(pts[i as usize], axis));
        let lo = (get(0).min().unwrap(), get(1).min().unwrap(), get(2).min().unwrap());
        let hi = (get(0).max().unwrap(), get(1).max().unwrap(), get(2).max().unwrap());
        groups.push(idxs);
        regions.push(ShardRegion3 { constraints, lo, hi });
        return;
    }
    // Cycle the split axis with depth; fall through to the next axis when
    // every point shares the preferred coordinate.
    let cut = (0..3u8)
        .map(|off| (depth as u8 + off) % 3)
        .find_map(|axis| {
            axis_threshold(idxs.iter().map(|&i| coord3(pts[i as usize], axis)))
                .map(|t| Cut3 { axis, t })
        })
        .unwrap_or_else(|| {
            panic!("degenerate cell: {} identical points cannot be split", idxs.len())
        });
    let (mut below, mut above) = (Vec::new(), Vec::new());
    for &i in &idxs {
        if cut.below(pts[i as usize]) {
            below.push(i);
        } else {
            above.push(i);
        }
    }
    let mut c_below = constraints.clone();
    c_below.push(CellConstraint3 { cut, below: true });
    let mut c_above = constraints;
    c_above.push(CellConstraint3 { cut, below: false });
    split3(pts, below, shards / 2, depth + 1, c_below, groups, regions);
    split3(pts, above, shards / 2, depth + 1, c_above, groups, regions);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo2(n: usize, seed: u64) -> Vec<(i64, i64)> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(200_001) - 100_000
        };
        (0..n).map(|_| (next(), next())).collect()
    }

    fn pseudo3(n: usize, seed: u64) -> Vec<(i64, i64, i64)> {
        let mut s = seed ^ 0x5eed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64).rem_euclid(100_001) - 50_000
        };
        (0..n).map(|_| (next(), next(), next())).collect()
    }

    #[test]
    fn partition2_is_a_near_even_disjoint_cover() {
        for seed in [3u64, 17, 88] {
            let pts = pseudo2(503, seed);
            for shards in [1usize, 2, 4, 8] {
                let p = partition2(&pts, shards);
                assert_eq!(p.groups.len(), shards);
                let mut seen = vec![false; pts.len()];
                for (g, region) in p.groups.iter().zip(&p.regions) {
                    assert!(!g.is_empty());
                    assert!(g.windows(2).all(|w| w[0] < w[1]), "ids ascend");
                    for &i in g {
                        assert!(!seen[i as usize], "point {i} in two groups");
                        seen[i as usize] = true;
                        let pt = pts[i as usize];
                        assert!(region.cell_contains(pt), "point outside its own cell");
                        assert!(pt.0 >= region.lo.0 && pt.0 <= region.hi.0);
                        assert!(pt.1 >= region.lo.1 && pt.1 <= region.hi.1);
                    }
                }
                assert!(seen.iter().all(|&s| s), "groups must cover the input");
                let sizes: Vec<usize> = p.groups.iter().map(Vec::len).collect();
                let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                assert!(max - min <= shards.max(2), "near-even: sizes {sizes:?} for S={shards}");
                // Cells are mutually exclusive for every input point.
                for &pt in &pts {
                    assert_eq!(
                        p.regions.iter().filter(|r| r.cell_contains(pt)).count(),
                        1,
                        "every point lies in exactly one cell"
                    );
                }
            }
        }
    }

    #[test]
    fn partition2_s1_is_identity() {
        let pts = pseudo2(40, 9);
        let p = partition2(&pts, 1);
        assert_eq!(p.groups, vec![(0..40u32).collect::<Vec<u32>>()]);
        assert!(p.regions[0].constraints.is_empty());
    }

    #[test]
    fn partition2_handles_collinear_and_duplicate_points() {
        // All on one vertical line (vertical ham-sandwich cuts are
        // degenerate) plus duplicates: the axis fallback must still split.
        let mut pts: Vec<(i64, i64)> = (0..32).map(|i| (7, i)).collect();
        pts.extend((0..8).map(|_| (7, 5)));
        let p = partition2(&pts, 4);
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), pts.len());
        // Duplicates always land in the same cell.
        let cells: Vec<usize> = pts.iter().map(|&pt| p.cell_of(pt).expect("covered")).collect();
        for (i, &pt) in pts.iter().enumerate() {
            for (j, &qt) in pts.iter().enumerate() {
                if pt == qt {
                    assert_eq!(cells[i], cells[j]);
                }
            }
        }
    }

    #[test]
    fn routing_tests_have_no_false_negatives() {
        let pts = pseudo2(300, 21);
        let p = partition2(&pts, 8);
        for (m, c) in [(0i64, 0i64), (3, 1000), (-40, -77), (12, 100_000)] {
            for inclusive in [false, true] {
                for (g, region) in p.groups.iter().zip(&p.regions) {
                    let has_answer = g.iter().any(|&i| {
                        let (x, y) = pts[i as usize];
                        let rhs = m as i128 * x as i128 + c as i128;
                        if inclusive {
                            y as i128 <= rhs
                        } else {
                            (y as i128) < rhs
                        }
                    });
                    if has_answer {
                        assert!(
                            region.may_intersect_halfplane(m, c, inclusive),
                            "pruned a shard holding an answer (m={m} c={c})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn disk_routing_has_no_false_negatives() {
        let pts = pseudo2(300, 21);
        let p = partition2(&pts, 8);
        for (x, y, r2) in
            [(0i64, 0i64, 1_000_000i64), (500, -500, 250_000), (-3, 7, 0), (1000, 1000, -1)]
        {
            for inclusive in [false, true] {
                for (g, region) in p.groups.iter().zip(&p.regions) {
                    let has_answer = g.iter().any(|&i| {
                        let (px, py) = pts[i as usize];
                        lcrs_geom::lift::in_disk(x, y, r2, px, py, inclusive)
                    });
                    if has_answer {
                        assert!(
                            region.may_intersect_disk(x, y, r2, inclusive),
                            "pruned a shard holding an answer (disk ({x},{y},{r2}))"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partition3_covers_and_routes() {
        let pts = pseudo3(257, 5);
        let p = partition3(&pts, 8);
        assert_eq!(p.groups.len(), 8);
        assert_eq!(p.groups.iter().map(Vec::len).sum::<usize>(), pts.len());
        for &pt in &pts {
            assert_eq!(p.regions.iter().filter(|r| r.cell_contains(pt)).count(), 1);
        }
        let (u, v, w) = (3i64, -2, 500);
        for (g, region) in p.groups.iter().zip(&p.regions) {
            let has = g.iter().any(|&i| {
                let (x, y, z) = pts[i as usize];
                (z as i128) < u as i128 * x as i128 + v as i128 * y as i128 + w as i128
            });
            if has {
                assert!(region.may_intersect_halfspace(u, v, w, false));
            }
        }
    }

    #[test]
    fn partitions_roundtrip_through_meta() {
        let pts = pseudo2(120, 33);
        let p = partition2(&pts, 4);
        let mut w = MetaWriter::new();
        p.save(&mut w);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        let q = Partition2::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(p, q);

        let pts3 = pseudo3(90, 34);
        let p3 = partition3(&pts3, 2);
        let mut w = MetaWriter::new();
        p3.save(&mut w);
        let mut r = MetaReader::from_bytes(w.into_bytes()).unwrap();
        let q3 = Partition3::load(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(p3, q3);
    }

    #[test]
    fn ham_sandwich_cuts_are_actually_used() {
        // In general position the first cut of a big partition must be a
        // Line cut (the whole point of reusing the ptree machinery).
        let pts = pseudo2(400, 44);
        let p = partition2(&pts, 2);
        assert!(
            matches!(p.regions[0].constraints[0].cut, Cut2::Line { .. }),
            "general position should use the ham-sandwich cut"
        );
    }
}
