//! Dynamization by partial reconstruction (the paper's Remark (iii) and
//! Open Problem 1).
//!
//! The standard logarithmic method [Bentley–Saxe; Mehlhorn, ref. 39 in the
//! paper's references]: maintain static Theorem 3.5 structures over subsets
//! of sizes that follow the binary representation of N. An insertion goes
//! into a buffer; when the buffer fills, it is merged with the smallest
//! structures and rebuilt — O((log₂ n)·amortized-build/N) amortized IOs per
//! insertion. Deletions use a tombstone set and trigger global rebuilding
//! when half the elements are dead, preserving the query bound at
//! O(log₂ n · (log_B n + t)) worst case (each of the O(log n) static parts
//! pays its own O(log_B n) search).

use std::collections::HashSet;
use std::sync::Arc;

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError};

use crate::cost::{CostHint, CostShape};
use crate::hs2d::{HalfspaceRS2, Hs2dConfig, QueryStats};

/// A dynamic halfspace-reporting structure over 2D points.
///
/// Point identity: values are `(x, y)` pairs plus a caller-supplied `u64`
/// tag (stable across rebuilds; duplicates allowed).
pub struct DynamicHalfspace2 {
    dev: DeviceHandle,
    cfg: Hs2dConfig,
    /// Static parts, geometrically increasing; `parts[i]` holds its build
    /// input so rebuilds can merge (kept on the host side like any
    /// database catalog would).
    parts: Vec<Part>,
    buffer: Vec<(i64, i64, u64)>,
    buffer_cap: usize,
    /// Tombstones. `Arc`-shared with reader forks (copy-on-write through
    /// `Arc::make_mut` on the writer's update paths).
    dead: Arc<HashSet<u64>>,
    live: usize,
    total_slots: usize,
}

struct Part {
    structure: HalfspaceRS2,
    /// Build input, `Arc`-shared with reader forks: a fork is O(parts),
    /// not O(n) — rebuilds reclaim the vector with `Arc::try_unwrap` when
    /// no fork holds it, and clone only then.
    points: Arc<Vec<(i64, i64, u64)>>,
}

impl DynamicHalfspace2 {
    pub fn new(dev: &DeviceHandle, cfg: Hs2dConfig) -> DynamicHalfspace2 {
        let b = dev.records_per_page(20).max(8);
        DynamicHalfspace2 {
            dev: dev.clone(),
            cfg,
            parts: Vec::new(),
            buffer: Vec::new(),
            buffer_cap: b,
            dead: Arc::new(HashSet::new()),
            live: 0,
            total_slots: 0,
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of static parts currently maintained (O(log n)).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The Section 7 logarithmic-method query bound — one Theorem 3.5
    /// search per live part, O(log n · log_B n + t/B) total — as a planner
    /// hint (DESIGN.md §10). Re-read after inserts/removes: the part count
    /// changes as the logarithmic method merges.
    pub fn cost_hint(&self) -> CostHint {
        CostHint::new(CostShape::PartsLog { parts: self.num_parts() as u32 }, self.len())
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same structure viewed through `h` (own cache + stats). The
    /// catalog state (part inputs, tombstones) is `Arc`-shared and the
    /// buffer copied, so the view answers queries exactly like `self` did
    /// at fork time in O(parts) work; updates belong to the original
    /// single-writer handle.
    pub fn with_handle(&self, h: &DeviceHandle) -> DynamicHalfspace2 {
        DynamicHalfspace2 {
            dev: h.clone(),
            cfg: self.cfg,
            parts: self
                .parts
                .iter()
                .map(|p| Part {
                    structure: p.structure.with_handle(h),
                    points: Arc::clone(&p.points),
                })
                .collect(),
            buffer: self.buffer.clone(),
            buffer_cap: self.buffer_cap,
            dead: Arc::clone(&self.dead),
            live: self.live,
            total_slots: self.total_slots,
        }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    /// Queries are read-only, so forks work whether or not the device is
    /// frozen; mutation stays with the original (the single writer).
    pub fn fork_reader(&self) -> DynamicHalfspace2 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the structure's catalog state: every static part (its
    /// Theorem 3.5 structure *and* its build input, which rebuilds need),
    /// the insert buffer, and the tombstone set (sorted so equal states
    /// serialize to equal bytes). Page data is captured by
    /// [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        w.usize(self.cfg.cluster_factor);
        w.usize(self.cfg.final_cutoff_factor);
        w.usize(self.cfg.beta_override);
        w.u64(self.cfg.seed);
        w.seq(self.parts.len());
        for p in &self.parts {
            p.structure.save(w);
            w.seq(p.points.len());
            for &(x, y, tag) in p.points.iter() {
                w.i64(x);
                w.i64(y);
                w.u64(tag);
            }
        }
        w.seq(self.buffer.len());
        for &(x, y, tag) in &self.buffer {
            w.i64(x);
            w.i64(y);
            w.u64(tag);
        }
        w.usize(self.buffer_cap);
        let mut dead: Vec<u64> = self.dead.iter().copied().collect();
        dead.sort_unstable();
        w.seq(dead.len());
        for t in dead {
            w.u64(t);
        }
        w.usize(self.live);
        w.usize(self.total_slots);
    }

    /// Rebuild from metadata written by [`Self::save`]. A structure loaded
    /// from a read-only snapshot serves queries exactly like the original;
    /// updates that would flush or rebuild panic at the device layer
    /// (writes on a frozen store), so treat the result as a reader.
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<DynamicHalfspace2, SnapshotError> {
        let cfg = Hs2dConfig {
            cluster_factor: r.usize()?,
            final_cutoff_factor: r.usize()?,
            beta_override: r.usize()?,
            seed: r.u64()?,
        };
        let n_parts = r.seq()?;
        let mut parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let structure = HalfspaceRS2::load(h, r)?;
            let n_pts = r.seq()?;
            let mut points = Vec::with_capacity(n_pts);
            for _ in 0..n_pts {
                points.push((r.i64()?, r.i64()?, r.u64()?));
            }
            if points.len() != structure.len() {
                return Err(r.error("part input length must match its structure"));
            }
            parts.push(Part { structure, points: Arc::new(points) });
        }
        let n_buf = r.seq()?;
        let mut buffer = Vec::with_capacity(n_buf);
        for _ in 0..n_buf {
            buffer.push((r.i64()?, r.i64()?, r.u64()?));
        }
        let buffer_cap = r.usize()?;
        let n_dead = r.seq()?;
        let mut dead = HashSet::with_capacity(n_dead);
        for _ in 0..n_dead {
            dead.insert(r.u64()?);
        }
        Ok(DynamicHalfspace2 {
            dev: h.clone(),
            cfg,
            parts,
            buffer,
            buffer_cap,
            dead: Arc::new(dead),
            live: r.usize()?,
            total_slots: r.usize()?,
        })
    }

    /// Insert a point with a caller-chosen tag (must be unique among live
    /// points if deletion by tag is used).
    pub fn insert(&mut self, x: i64, y: i64, tag: u64) {
        self.buffer.push((x, y, tag));
        self.live += 1;
        self.total_slots += 1;
        if self.buffer.len() >= self.buffer_cap {
            self.flush_buffer();
        }
    }

    /// Delete by tag; `true` if a live point was removed (lazy tombstone).
    pub fn remove(&mut self, tag: u64) -> bool {
        if let Some(i) = self.buffer.iter().position(|p| p.2 == tag) {
            self.buffer.swap_remove(i);
            self.live -= 1;
            self.total_slots -= 1;
            return true;
        }
        let exists = self.parts.iter().any(|p| p.points.iter().any(|q| q.2 == tag))
            && !self.dead.contains(&tag);
        if !exists {
            return false;
        }
        Arc::make_mut(&mut self.dead).insert(tag);
        self.live -= 1;
        if self.live * 2 < self.total_slots {
            self.rebuild_all();
        }
        true
    }

    fn flush_buffer(&mut self) {
        // Logarithmic merge: gather the buffer plus every part not larger
        // than the accumulated size, rebuild one structure from the union.
        let mut batch: Vec<(i64, i64, u64)> = std::mem::take(&mut self.buffer);
        loop {
            let acc = batch.len();
            match self.parts.iter().position(|p| p.points.len() <= acc) {
                Some(i) => {
                    let part = self.parts.swap_remove(i);
                    // Reclaim the vector when no reader fork holds it.
                    batch.extend(Arc::try_unwrap(part.points).unwrap_or_else(|a| (*a).clone()));
                }
                None => break,
            }
        }
        let dead = Arc::make_mut(&mut self.dead);
        batch.retain(|p| !dead.remove(&p.2));
        self.total_slots = self.parts.iter().map(|p| p.points.len()).sum::<usize>()
            + batch.len()
            + self.buffer.len();
        if batch.is_empty() {
            return;
        }
        let coords: Vec<(i64, i64)> = batch.iter().map(|p| (p.0, p.1)).collect();
        let structure = HalfspaceRS2::build(&self.dev, &coords, self.cfg);
        self.parts.push(Part { structure, points: Arc::new(batch) });
        self.parts.sort_by_key(|p| std::cmp::Reverse(p.points.len()));
    }

    fn rebuild_all(&mut self) {
        let mut all: Vec<(i64, i64, u64)> = std::mem::take(&mut self.buffer);
        for p in std::mem::take(&mut self.parts) {
            all.extend(Arc::try_unwrap(p.points).unwrap_or_else(|a| (*a).clone()));
        }
        all.retain(|p| !self.dead.contains(&p.2));
        self.dead = Arc::new(HashSet::new());
        self.total_slots = all.len();
        self.live = all.len();
        if all.is_empty() {
            return;
        }
        let coords: Vec<(i64, i64)> = all.iter().map(|p| (p.0, p.1)).collect();
        let structure = HalfspaceRS2::build(&self.dev, &coords, self.cfg);
        self.parts.push(Part { structure, points: Arc::new(all) });
    }

    /// Report the tags of all live points strictly below `y = m·x + c`
    /// (`inclusive` adds on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> Vec<u64> {
        self.query_below_stats(m, c, inclusive).0
    }

    pub fn query_below_stats(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u64>, QueryStats) {
        let mut out = Vec::new();
        let mut stats = QueryStats::default();
        for part in &self.parts {
            let (ids, st) = part.structure.query_below_stats(m, c, inclusive);
            stats.ios += st.ios;
            stats.clusterings_visited += st.clusterings_visited;
            stats.clusters_read += st.clusters_read;
            for id in ids {
                let p = part.points[id as usize];
                if !self.dead.contains(&p.2) {
                    out.push(p.2);
                }
            }
        }
        // The in-memory buffer is scanned for free (it models the one
        // internal-memory block every external structure is allowed).
        for &(x, y, tag) in &self.buffer {
            let rhs = m as i128 * x as i128 + c as i128;
            let hit = if inclusive { y as i128 <= rhs } else { (y as i128) < rhs };
            if hit {
                out.push(tag);
            }
        }
        stats.reported = out.len();
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};
    use std::collections::BTreeMap;

    fn check(dynamic: &DynamicHalfspace2, model: &BTreeMap<u64, (i64, i64)>) {
        for (m, c, inclusive) in [(3i64, 500i64, false), (-2, -100, true), (0, 0, false)] {
            let mut got = dynamic.query_below(m, c, inclusive);
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, &(x, y))| {
                    let rhs = m as i128 * x as i128 + c as i128;
                    if inclusive {
                        y as i128 <= rhs
                    } else {
                        (y as i128) < rhs
                    }
                })
                .map(|(t, _)| *t)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "m={m} c={c}");
        }
    }

    #[test]
    fn inserts_then_queries() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let mut model = BTreeMap::new();
        let mut s = 77u64;
        for tag in 0..600u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (x, y) = (((s >> 33) as i64) % 2000 - 1000, ((s >> 13) as i64) % 2000 - 1000);
            d.insert(x, y, tag);
            model.insert(tag, (x, y));
            if tag % 97 == 0 {
                check(&d, &model);
            }
        }
        assert!(d.num_parts() <= 12, "parts must stay logarithmic: {}", d.num_parts());
        check(&d, &model);
    }

    #[test]
    fn interleaved_inserts_and_deletes() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let mut model = BTreeMap::new();
        let mut s = 5u64;
        for round in 0..900u64 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if round % 3 == 2 && !model.is_empty() {
                // Delete a pseudo-random live tag.
                let k = *model.keys().nth((s as usize) % model.len()).unwrap();
                assert!(d.remove(k));
                model.remove(&k);
            } else {
                let (x, y) = (((s >> 33) as i64) % 500 - 250, ((s >> 11) as i64) % 500 - 250);
                d.insert(x, y, round);
                model.insert(round, (x, y));
            }
            if round % 131 == 0 {
                check(&d, &model);
                assert_eq!(d.len(), model.len());
            }
        }
        check(&d, &model);
    }

    #[test]
    fn removing_absent_tag_is_noop() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        d.insert(1, 1, 10);
        assert!(!d.remove(99));
        assert!(d.remove(10));
        assert!(!d.remove(10));
        assert!(d.is_empty());
    }

    #[test]
    fn mass_deletion_triggers_compaction() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        for t in 0..400u64 {
            d.insert(t as i64, -(t as i64), t);
        }
        for t in 0..300u64 {
            assert!(d.remove(t));
        }
        assert_eq!(d.len(), 100);
        // After compaction the dead set must have been flushed.
        assert!(d.dead.len() < 200);
        let got = d.query_below(0, i64::MAX / 4, false);
        assert_eq!(got.len(), 100);
    }
}
