//! Dynamization by partial reconstruction (the paper's Remark (iii) and
//! Open Problem 1).
//!
//! The standard logarithmic method [Bentley–Saxe; Mehlhorn, ref. 39 in the
//! paper's references]: maintain static Theorem 3.5 structures over subsets
//! of sizes that follow the binary representation of N. An insertion goes
//! into a buffer; when the buffer fills, it is merged with the smallest
//! structures and rebuilt — O((log₂ n)·amortized-build/N) amortized IOs per
//! insertion. Deletions use a tombstone set and trigger global rebuilding
//! when half the elements are dead, preserving the query bound at
//! O(log₂ n · (log_B n + t)) worst case (each of the O(log n) static parts
//! pays its own O(log_B n) search).
//!
//! The mechanics live in [`crate::leveled::LeveledHalfspace2`] (delta tier,
//! frozen levels, merge policy — DESIGN.md §12); this type is its
//! in-process configuration: every level on the one caller-provided device
//! ([`crate::leveled::LevelBacking::Shared`]), synchronous merges, the
//! original `DynamicHalfspace2` API and serialization format unchanged.
//! The engine's `LiveIndex` is the other configuration of the same core —
//! per-level frozen devices persisted through a snapshot catalog.

use lcrs_extmem::{DeviceHandle, MetaReader, MetaWriter, SnapshotError};

use crate::cost::CostHint;
use crate::hs2d::{Hs2dConfig, QueryStats};
use crate::leveled::{LevelBacking, LeveledHalfspace2};

/// A dynamic halfspace-reporting structure over 2D points.
///
/// Point identity: values are `(x, y)` pairs plus a caller-supplied `u64`
/// tag (stable across rebuilds; duplicates allowed).
pub struct DynamicHalfspace2 {
    dev: DeviceHandle,
    core: LeveledHalfspace2,
}

impl DynamicHalfspace2 {
    pub fn new(dev: &DeviceHandle, cfg: Hs2dConfig) -> DynamicHalfspace2 {
        DynamicHalfspace2 {
            dev: dev.clone(),
            core: LeveledHalfspace2::new(dev, cfg, LevelBacking::Shared, None),
        }
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    pub fn is_empty(&self) -> bool {
        self.core.is_empty()
    }

    /// Number of static parts currently maintained (O(log n)).
    pub fn num_parts(&self) -> usize {
        self.core.num_parts()
    }

    /// The Section 7 logarithmic-method query bound — one Theorem 3.5
    /// search per live part, O(log n · log_B n + t/B) total — as a planner
    /// hint (DESIGN.md §10). Re-read after inserts/removes: the part count
    /// changes as the logarithmic method merges.
    pub fn cost_hint(&self) -> CostHint {
        self.core.cost_hint()
    }

    /// The device this structure lives on (for scoped IO measurement).
    pub fn device(&self) -> &DeviceHandle {
        &self.dev
    }

    /// The same structure viewed through `h` (own cache + stats). The
    /// catalog state (part inputs, tombstones) is `Arc`-shared and the
    /// buffer copied, so the view answers queries exactly like `self` did
    /// at fork time in O(parts) work; updates belong to the original
    /// single-writer handle.
    pub fn with_handle(&self, h: &DeviceHandle) -> DynamicHalfspace2 {
        DynamicHalfspace2 { dev: h.clone(), core: self.core.with_scope(h) }
    }

    /// A reader clone on a fresh handle scope over the same pages — each
    /// parallel worker calls this to get its own LRU and IO attribution.
    /// Queries are read-only, so forks work whether or not the device is
    /// frozen; mutation stays with the original (the single writer).
    pub fn fork_reader(&self) -> DynamicHalfspace2 {
        self.with_handle(&self.dev.fork())
    }

    /// Serialize the structure's catalog state: every static part (its
    /// Theorem 3.5 structure *and* its build input, which rebuilds need),
    /// the insert buffer, and the tombstone set (sorted so equal states
    /// serialize to equal bytes). Page data is captured by
    /// [`lcrs_extmem::Device::freeze_to_path`].
    pub fn save(&self, w: &mut MetaWriter) {
        self.core.save(w);
    }

    /// Rebuild from metadata written by [`Self::save`]. A structure loaded
    /// from a read-only snapshot serves queries exactly like the original;
    /// updates that would flush or rebuild panic at the device layer
    /// (writes on a frozen store), so treat the result as a reader.
    pub fn load(h: &DeviceHandle, r: &mut MetaReader) -> Result<DynamicHalfspace2, SnapshotError> {
        Ok(DynamicHalfspace2 { dev: h.clone(), core: LeveledHalfspace2::load(h, r)? })
    }

    /// Insert a point with a caller-chosen tag (must be unique among live
    /// points if deletion by tag is used).
    pub fn insert(&mut self, x: i64, y: i64, tag: u64) {
        self.core.insert(x, y, tag);
    }

    /// Delete by tag; `true` if a live point was removed (lazy tombstone).
    pub fn remove(&mut self, tag: u64) -> bool {
        self.core.remove(tag)
    }

    /// Report the tags of all live points strictly below `y = m·x + c`
    /// (`inclusive` adds on-line points).
    pub fn query_below(&self, m: i64, c: i64, inclusive: bool) -> Vec<u64> {
        self.core.query_below(m, c, inclusive)
    }

    pub fn query_below_stats(&self, m: i64, c: i64, inclusive: bool) -> (Vec<u64>, QueryStats) {
        self.core.query_below_stats(m, c, inclusive)
    }

    /// Count and weight-sum (`Σ x + y`, exact in `i128`) of live points
    /// below `y = m·x + c` — exact host-side enumeration over the catalog
    /// state (see [`LeveledHalfspace2::aggregate_below`]).
    pub fn aggregate_below(&self, m: i64, c: i64, inclusive: bool) -> (u64, i128) {
        self.core.aggregate_below(m, c, inclusive)
    }

    /// The `k` live points with the lowest key `y − m·x` among those with
    /// key ≤ `c`, as tags ordered by `(key, tag)`.
    pub fn top_k(&self, m: i64, c: i64, k: usize) -> Vec<u64> {
        self.core.top_k(m, c, k)
    }

    /// Tags of live points inside the disk of center `(x, y)` and squared
    /// radius `r2` — exact for arbitrary `i64` coordinates.
    pub fn disk_report(&self, x: i64, y: i64, r2: i64, inclusive: bool) -> Vec<u64> {
        self.core.disk_report(x, y, r2, inclusive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_extmem::{Device, DeviceConfig};
    use std::collections::BTreeMap;

    fn check(dynamic: &DynamicHalfspace2, model: &BTreeMap<u64, (i64, i64)>) {
        for (m, c, inclusive) in [(3i64, 500i64, false), (-2, -100, true), (0, 0, false)] {
            let mut got = dynamic.query_below(m, c, inclusive);
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .iter()
                .filter(|(_, &(x, y))| {
                    let rhs = m as i128 * x as i128 + c as i128;
                    if inclusive {
                        y as i128 <= rhs
                    } else {
                        (y as i128) < rhs
                    }
                })
                .map(|(t, _)| *t)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "m={m} c={c}");
        }
    }

    #[test]
    fn inserts_then_queries() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let mut model = BTreeMap::new();
        let mut s = 77u64;
        for tag in 0..600u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (x, y) = (((s >> 33) as i64) % 2000 - 1000, ((s >> 13) as i64) % 2000 - 1000);
            d.insert(x, y, tag);
            model.insert(tag, (x, y));
            if tag % 97 == 0 {
                check(&d, &model);
            }
        }
        assert!(d.num_parts() <= 12, "parts must stay logarithmic: {}", d.num_parts());
        check(&d, &model);
    }

    #[test]
    fn interleaved_inserts_and_deletes() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let mut model = BTreeMap::new();
        let mut s = 5u64;
        for round in 0..900u64 {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            if round % 3 == 2 && !model.is_empty() {
                // Delete a pseudo-random live tag.
                let k = *model.keys().nth((s as usize) % model.len()).unwrap();
                assert!(d.remove(k));
                model.remove(&k);
            } else {
                let (x, y) = (((s >> 33) as i64) % 500 - 250, ((s >> 11) as i64) % 500 - 250);
                d.insert(x, y, round);
                model.insert(round, (x, y));
            }
            if round % 131 == 0 {
                check(&d, &model);
                assert_eq!(d.len(), model.len());
            }
        }
        check(&d, &model);
    }

    #[test]
    fn removing_absent_tag_is_noop() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        d.insert(1, 1, 10);
        assert!(!d.remove(99));
        assert!(d.remove(10));
        assert!(!d.remove(10));
        assert!(d.is_empty());
    }

    #[test]
    fn mass_deletion_triggers_compaction() {
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        for t in 0..400u64 {
            d.insert(t as i64, -(t as i64), t);
        }
        for t in 0..300u64 {
            assert!(d.remove(t));
        }
        assert_eq!(d.len(), 100);
        // After compaction the dead set must have been flushed.
        assert!(d.core.delta().dead_len() < 200);
        let got = d.query_below(0, i64::MAX / 4, false);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn wrapper_format_equals_leveled_core_format() {
        // The thin wrapper must serialize byte-identically to its core:
        // the `dynamic` catalog kind is pinned to this format.
        use crate::leveled::{LevelBacking, LeveledHalfspace2};
        let dev = Device::new(DeviceConfig::new(256, 0));
        let mut d = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let dev2 = Device::new(DeviceConfig::new(256, 0));
        let mut core =
            LeveledHalfspace2::new(&dev2, Hs2dConfig::default(), LevelBacking::Shared, None);
        for t in 0..120u64 {
            let (x, y) = ((t as i64 * 13) % 300 - 150, (t as i64 * 29) % 300 - 150);
            d.insert(x, y, t);
            core.insert(x, y, t);
            if t % 5 == 4 {
                assert!(d.remove(t - 2));
                assert!(core.remove(t - 2));
            }
        }
        let mut wa = lcrs_extmem::MetaWriter::new();
        d.save(&mut wa);
        let mut wb = lcrs_extmem::MetaWriter::new();
        core.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes(), "wrapper and core must serialize identically");
    }
}
