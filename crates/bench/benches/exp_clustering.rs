//! EXP-CLUSTER — Section 3.1/3.2 (Lemma 3.2, Figs. 3-4 analogue):
//! structural quality of the greedy 3k-clustering.
//!
//! Measured: cluster count vs the N/k bound, maximum cluster size vs 3k,
//! duplication factor (Σ|C_i| / |L_i| — the overhead of lines appearing in
//! several clusters), and per-cluster line retirement.

use lcrs_bench::print_table;
use lcrs_geom::line2::Line2;
use lcrs_halfspace::hs2d::cluster::greedy_clustering;
use lcrs_workloads::{points2, Dist2};

fn dual_lines(dist: Dist2, n: usize, seed: u64) -> Vec<Line2> {
    let pts = points2(dist, n + 16, 1 << 29, seed);
    let mut ls: Vec<Line2> = pts.iter().map(|&(x, y)| Line2::new(-x, y)).collect();
    ls.sort_by_key(|l| (l.m, l.b));
    ls.dedup();
    ls.truncate(n);
    ls
}

fn main() {
    println!("# EXP-CLUSTER: greedy 3k-clustering quality (Lemma 3.2)");
    let mut rows = Vec::new();
    for dist in [Dist2::Uniform, Dist2::Gaussianish, Dist2::Circle] {
        for (n, k) in [(2048usize, 32usize), (2048, 128), (8192, 128)] {
            let lines = dual_lines(dist, n, (n + k) as u64);
            let ids: Vec<u32> = (0..lines.len() as u32).collect();
            let c = greedy_clustering(&lines, &ids, k, 3);
            let total: usize = c.clusters.iter().map(|x| x.len()).sum();
            let maxc = c.clusters.iter().map(|x| x.len()).max().unwrap();
            rows.push(vec![
                format!("{dist:?}"),
                format!("{n}"),
                format!("{k}"),
                format!("{}", c.clusters.len()),
                format!("{}", n / k),
                format!("{maxc}"),
                format!("{}", 3 * k),
                format!("{:.2}", total as f64 / c.covered.len() as f64),
                format!("{}", c.level_vertices),
            ]);
        }
    }
    print_table(
        "clusterings of the k-level (paper: ≤ N/k clusters of ≤ 3k lines; duplication O(1))",
        &[
            "dist",
            "N",
            "k",
            "clusters",
            "N/k bound",
            "max |C|",
            "3k bound",
            "dup factor",
            "level vtx",
        ],
        &rows,
    );
}
