//! EXP-PERSIST — the build-once/serve-many lifecycle (DESIGN.md §9):
//! build an index, freeze it to a snapshot file, reopen it read-only in a
//! file-backed device, and compare the cold-reopen query cost against the
//! in-memory frozen original, per structure and distribution.
//!
//! Invariants asserted on every cell: reopened answers are bit-identical
//! to the in-memory run, read-IO totals are *identical* (persistence only
//! changes where the bytes live, never the cost model), and a cold
//! reopened device starts with zeroed IO counters. The interesting
//! numbers are wall-clock: `save`/`open` are one-time costs amortized
//! over every process that skips the build, and `q_mem` vs `q_file`
//! shows the price of serving straight from the (checksummed, pread-
//! backed) file.
//!
//! Run with `--smoke` for the CI-sized variant. All snapshot files live
//! in a self-cleaning temp directory.

use std::time::{Duration, Instant};

use lcrs_baselines::{ExternalKdTree, ExternalScan};
use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{load_index, BatchExecutor, Query, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig, IoStats, MetaReader, MetaWriter, PageBackend, TempDir};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3};
use lcrs_halfspace::KnnStructure;
use lcrs_workloads::{
    halfplane_batch, halfspace3_batch, knn_batch, points2, points3, BatchShape, Dist2, Dist3,
};

const PAGE: usize = 4096;
const CACHE_PAGES: usize = 512;

struct Row {
    structure: &'static str,
    dist: String,
    n: usize,
    queries: usize,
    pages: u64,
    snap_kib: u64,
    build_ms: f64,
    save_ms: f64,
    open_ms: f64,
    reads: u64,
    q_mem_ms: f64,
    q_file_ms: f64,
}

/// One cell: persist `index`, reopen it, and pin the differential
/// invariants while timing every lifecycle step.
fn run_cell(
    dir: &TempDir,
    dev: &Device,
    index: &dyn RangeIndex,
    queries: &[Query],
    n: usize,
    dist: String,
    build_ms: f64,
) -> Row {
    let label = format!("{}-{dist}", index.name());
    let mem = BatchExecutor::new(index).keep_answers(true).run_batched(queries);
    let t = Instant::now();
    let mem_timed = BatchExecutor::new(index).run_batched(queries);
    let q_mem_ms = t.elapsed().as_secs_f64() * 1e3;

    let path = dir.file(&format!("{label}.pages"));
    let t = Instant::now();
    dev.freeze_to_path(&path).expect("freeze_to_path");
    let mut w = MetaWriter::new();
    index.save_meta(&mut w);
    let meta = w.into_bytes();
    let save_ms = t.elapsed().as_secs_f64() * 1e3;
    let snap_kib = std::fs::metadata(&path).expect("snapshot exists").len() / 1024;

    let t = Instant::now();
    let re_dev = Device::open_snapshot(&path, CACHE_PAGES).expect("open_snapshot");
    let mut r = MetaReader::from_bytes(meta).expect("metadata envelope");
    let re = load_index(index.name(), &re_dev, &mut r).expect("load_index");
    let open_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(re_dev.backend(), PageBackend::File, "{label}");
    assert_eq!(
        re_dev.stats(),
        IoStats::default(),
        "{label}: cold reopen must start with zeroed counters"
    );

    let rep = BatchExecutor::new(&*re).keep_answers(true).run_batched(queries);
    assert_eq!(rep.answers, mem.answers, "{label}: reopened answers must be bit-identical");
    assert_eq!(rep.total, mem.total, "{label}: reopened IO totals must be identical");
    let t = Instant::now();
    let file_timed = BatchExecutor::new(&*re).run_batched(queries);
    let q_file_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(file_timed.total, mem_timed.total, "{label}: timed runs agree too");

    Row {
        structure: index.name(),
        dist,
        n,
        queries: queries.len(),
        pages: dev.pages_allocated(),
        snap_kib,
        build_ms,
        save_ms,
        open_ms,
        reads: rep.total.reads,
        q_mem_ms,
        q_file_ms,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, n3, batch_len) = if smoke { (3000, 800, 150) } else { (60_000, 12_288, 800) };
    let dir = TempDir::new("lcrs-exp-persist");
    println!(
        "# EXP-PERSIST: freeze_to_path / open_snapshot lifecycle, page={PAGE}B, \
         cache={CACHE_PAGES} pages, {batch_len}-query batches{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    // 2D: the optimal structure and the two fastest-building baselines.
    for dist in [Dist2::Uniform, Dist2::Clustered] {
        let pts = points2(dist, n2, 1 << 29, 52);
        let queries: Vec<Query> = halfplane_batch(
            &pts,
            BatchShape::ZipfRepeat { distinct: 16, s: 1.1 },
            batch_len,
            48,
            3,
        )
        .into_iter()
        .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
        .collect();
        {
            let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
            let t = Instant::now();
            let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
            let ms = t.elapsed().as_secs_f64() * 1e3;
            rows.push(run_cell(&dir, &dev, &hs, &queries, n2, format!("{dist:?}"), ms));
        }
        {
            let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
            let t = Instant::now();
            let kd = ExternalKdTree::build(&dev, &pts);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            rows.push(run_cell(&dir, &dev, &kd, &queries, n2, format!("{dist:?}"), ms));
        }
        {
            let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
            let t = Instant::now();
            let sc = ExternalScan::build(&dev, &pts);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            rows.push(run_cell(&dir, &dev, &sc, &queries, n2, format!("{dist:?}"), ms));
        }
    }

    // 3D: the a=2/3 trade-off tree.
    for dist in [Dist3::Uniform, Dist3::Slab] {
        let pts = points3(dist, n3, 1 << 18, 53);
        let queries: Vec<Query> = halfspace3_batch(&pts, BatchShape::SortedSweep, batch_len, 32, 4)
            .into_iter()
            .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
            .collect();
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let t = Instant::now();
        let hybrid = HybridTree3::build(&dev, &pts, HybridConfig::default());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        rows.push(run_cell(&dir, &dev, &hybrid, &queries, n3, format!("{dist:?}"), ms));
    }

    // k-NN (centers inside the lift coordinate budget).
    {
        let pts = points2(Dist2::Uniform, n3, 1000, 54);
        let queries: Vec<Query> = knn_batch(&pts, BatchShape::SortedSweep, batch_len, 16, 5)
            .into_iter()
            .map(|(x, y, k)| Query::Knn { x, y, k })
            .collect();
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let t = Instant::now();
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        rows.push(run_cell(&dir, &dev, &knn, &queries, n3, "Uniform".to_string(), ms));
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.structure.to_string(),
                r.dist.clone(),
                format!("{}", r.n),
                format!("{}", r.queries),
                format!("{}", r.pages),
                format!("{}", r.snap_kib),
                format!("{:.1}", r.build_ms),
                format!("{:.1}", r.save_ms),
                format!("{:.1}", r.open_ms),
                format!("{}", r.reads),
                format!("{:.1}", r.q_mem_ms),
                format!("{:.1}", r.q_file_ms),
            ]
        })
        .collect();
    print_table(
        "Persist lifecycle: snapshot size and wall-clock per step (answers and read-IOs \
         pinned identical between memory and file backends)",
        &[
            "structure",
            "dist",
            "n",
            "queries",
            "pages",
            "snapKiB",
            "build",
            "save",
            "open",
            "reads",
            "q_mem",
            "q_file",
        ],
        &table,
    );

    let amortize: f64 =
        rows.iter().map(|r| r.build_ms - r.open_ms).sum::<f64>() / rows.len() as f64;
    println!(
        "\nAll {} cells: bit-identical answers, identical read-IO totals, zeroed cold \
         counters. Reopening skips the build entirely — on average {:.1} ms saved per \
         process per index (build − open), paid once at save time.",
        rows.len(),
        amortize
    );
    if smoke {
        let mut report = BenchReport::new("exp_persist", smoke);
        for r in &rows {
            report
                .cell(format!("{}/{}", r.structure, r.dist))
                .metric("queries", r.queries as f64)
                .metric("read_ios", r.reads as f64)
                .metric("snapshot_kib", r.snap_kib as f64)
                .metric("pages", r.pages as f64)
                .metric("build_s", r.build_ms / 1e3)
                .metric("save_s", r.save_ms / 1e3)
                .metric("open_s", r.open_ms / 1e3)
                .metric("query_mem_s", r.q_mem_ms / 1e3)
                .metric("query_file_s", r.q_file_ms / 1e3)
                .report_wall(Duration::from_secs_f64(r.q_file_ms / 1e3));
        }
        report.write_default();
    }
}
