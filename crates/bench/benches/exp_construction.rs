//! EXP-CONSTR — construction cost of every structure (Sections 3.2, 4.1,
//! 5): wall time and write IOs vs N. The paper's bounds are
//! O(N log₂N·log_B n) expected (2D), O(n log₂n·log_B n) (3D) and
//! O(N log₂ N) (partition trees).

use lcrs_bench::{print_table, time_it};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_workloads::{points2, points3, Dist2, Dist3};

fn main() {
    let page = 4096usize;
    println!("# EXP-CONSTR: construction cost, page={page}B");
    let mut rows = Vec::new();
    for e in [13usize, 14, 15, 16] {
        let n_pts = 1usize << e;
        {
            let pts = points2(Dist2::Uniform, n_pts, 1 << 29, e as u64);
            let dev = Device::new(DeviceConfig::new(page, 0));
            let (hs, secs) = time_it(|| HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default()));
            rows.push(vec![
                "hs2d".into(),
                format!("{n_pts}"),
                format!("{:.2}", secs),
                format!("{}", dev.stats().writes),
                format!("{}", hs.pages()),
            ]);
        }
        {
            let pts = points3(Dist3::Uniform, n_pts, 1 << 19, e as u64);
            let dev = Device::new(DeviceConfig::new(page, 0));
            let (hs, secs) = time_it(|| HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default()));
            rows.push(vec![
                "hs3d".into(),
                format!("{n_pts}"),
                format!("{:.2}", secs),
                format!("{}", dev.stats().writes),
                format!("{}", hs.pages()),
            ]);
        }
        {
            let pts = points2(Dist2::Uniform, n_pts, 1 << 29, e as u64);
            let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
            let dev = Device::new(DeviceConfig::new(page, 0));
            let (t, secs) = time_it(|| PartitionTree::build(&dev, &ptpts, PTreeConfig::default()));
            rows.push(vec![
                "ptree-2d".into(),
                format!("{n_pts}"),
                format!("{:.2}", secs),
                format!("{}", dev.stats().writes),
                format!("{}", t.pages()),
            ]);
        }
    }
    print_table(
        "construction wall time, write IOs and final size",
        &["structure", "N", "seconds", "write IOs", "pages"],
        &rows,
    );
}
