//! EXP-PLANNER — the cost-model query planner (DESIGN.md §10): a mixed
//! six-class workload (halfplane/halfspace/k-NN plus the DESIGN.md §15
//! disk/count/sum/top-k classes) over an [`IndexSet`] holding every
//! structure in the workspace, routed three ways — planned (calibrated
//! argmin), always-scan, and predicted-worst — with the differential gates
//! asserted on every run:
//!
//! * planned answers are bit-identical to the linear-scan baselines (and
//!   the scan baselines are themselves oracle-checked in the test suites);
//! * planned aggregate read IOs are strictly below always-scan *and*
//!   predicted-worst routing;
//! * per-query IO attribution sums exactly to the aggregate;
//! * calibration constants round-trip through a snapshot catalog with
//!   identical plan decisions (no re-probing on reopen).
//!
//! Run with `--smoke` for the CI-sized variant (which also emits
//! `BENCH_exp_planner.json` for the read-IO regression gate).

use std::time::{Duration, Instant};

use lcrs_bench::{
    canon_answer, full_index_set, lifted_oracle, lifted_probes, print_table, BenchReport,
};
use lcrs_engine::{IndexSet, Plan, PlanReport, Query, SnapshotCatalog};
use lcrs_extmem::{Device, DeviceConfig, TempDir};
use lcrs_workloads::{points2, points3, Dist2, Dist3};

const PAGE: usize = 1024;
// Smaller than either scan file, so the always-scan routing pays its real
// Θ(n/B) per query instead of serving a fully resident file.
const CACHE_PAGES: usize = 32;

fn class(q: &Query) -> &'static str {
    match q {
        Query::Halfplane { .. } => "halfplane",
        Query::Halfspace { .. } => "halfspace",
        Query::Knn { .. } => "knn",
        Query::Disk { .. } => "disk",
        Query::Count { .. } => "count",
        Query::Sum { .. } => "sum",
        Query::TopK { .. } => "topk",
    }
}

fn run_plan(set: &IndexSet, queries: &[Query], plan: &Plan) -> (PlanReport, f64) {
    let t = Instant::now();
    let report = set.execute_plan(queries, plan, true);
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(report.attributed_total(), report.total, "per-query deltas must sum exactly");
    (report, wall)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, n3, counts) = if smoke {
        (4096, 2048, (180, 80, 60, 72, 72, 36))
    } else {
        (16384, 6144, (720, 320, 240, 288, 288, 144))
    };
    let total = counts.0 + counts.1 + counts.2 + counts.3 + counts.4 + counts.5;
    println!(
        "# EXP-PLANNER: planned vs always-scan vs worst routing on a mixed \
         six-class {total}-query workload, page={PAGE}B, cache={CACHE_PAGES} pages{}",
        if smoke { " (smoke)" } else { "" }
    );

    // One 2D and one 3D dataset; every structure in the workspace. The 2D
    // range stays inside the k-NN lift budget so the scan, the k-NN
    // structure, and the halfplane structures all index the same points.
    let pts2 = points2(Dist2::Clustered, n2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, n3, 1 << 16, 62);

    // The canonical fifteen-structure fixture, shared with the planner
    // test suite (slot order is load-bearing for tie-breaking).
    let dev2 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev3 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let mut set = full_index_set(&dev2, &dev3, &pts2, &pts3);

    // The measured probe pass, on seeds disjoint from the workload; the
    // aggregate probes populate the dual calibration's aggregate side.
    let probes = lifted_probes(&pts2, &pts3, 81);
    let t = Instant::now();
    set.calibrate(&probes);
    let calibrate_ms = t.elapsed().as_secs_f64() * 1e3;

    let calib_table: Vec<Vec<String>> = (0..set.len())
        .map(|slot| {
            let hint = set.structure(slot).cost_hint();
            let c = set.calibration(slot);
            vec![
                set.structure(slot).name().to_string(),
                format!("{:?}", hint.shape),
                format!("{:.1}", hint.structural_reads()),
                format!("{:.3}", c.constant),
                format!("{}", c.probes),
            ]
        })
        .collect();
    print_table(
        &format!("Calibration ({} probes, {calibrate_ms:.1} ms)", probes.len()),
        &["structure", "shape", "structural", "constant", "probes"],
        &calib_table,
    );

    // The mixed workload, interleaved — the same oracle construction
    // (helper, class mix, seeds) as the planner test suite's, evaluated
    // here over this bench's larger datasets.
    let queries = lifted_oracle(&pts2, &pts3, counts, 71);

    let planned_plan = set.plan(&queries);
    let scan_plan = set.scan_plan(&queries);
    let worst_plan = set.worst_plan(&queries);
    assert_eq!(planned_plan.unrouted(), 0, "the set covers every query class");
    assert_eq!(scan_plan.unrouted(), 0, "scan + scan3 cover every query class");

    let (planned, planned_wall) = run_plan(&set, &queries, &planned_plan);
    let (scanned, scanned_wall) = run_plan(&set, &queries, &scan_plan);
    let (worst, worst_wall) = run_plan(&set, &queries, &worst_plan);

    // Differential gate: planned answers == the linear-scan baseline's.
    let planned_answers = planned.answers.as_ref().unwrap();
    let scanned_answers = scanned.answers.as_ref().unwrap();
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            canon_answer(q, planned_answers[qi].clone()),
            canon_answer(q, scanned_answers[qi].clone()),
            "q{qi} {q:?}: planned must match the scan baseline bit-identically"
        );
    }
    assert!(
        planned.reads() < scanned.reads(),
        "planned {} read IOs must strictly beat always-scan {}",
        planned.reads(),
        scanned.reads()
    );
    assert!(
        planned.reads() < worst.reads(),
        "planned {} read IOs must strictly beat worst routing {}",
        planned.reads(),
        worst.reads()
    );

    // Calibration round trip: a catalog-reopened set plans identically.
    let dir = TempDir::new("lcrs-exp-planner");
    dev2.freeze();
    dev3.freeze();
    let mut cat = SnapshotCatalog::create(dir.path()).expect("catalog");
    for slot in 0..set.len() {
        cat.add(&format!("s{slot}"), set.structure(slot)).expect("catalog add");
    }
    set.save_calibration_to_catalog(&cat).expect("save calibration");
    let reopened = IndexSet::from_catalog(&cat, CACHE_PAGES).expect("reopen");
    let re_plan = reopened.plan(&queries);
    assert_eq!(
        planned_plan.assignments, re_plan.assignments,
        "a reopened catalog must plan identically without re-probing"
    );

    // Parallel composition: the planned routing under sharded execution.
    let t = Instant::now();
    let par = set.execute_parallel_plan(&queries, &planned_plan, 4, true);
    let par_wall = t.elapsed().as_secs_f64();
    assert_eq!(par.answers, planned.answers, "parallel plan execution must not change answers");
    assert_eq!(par.attributed_total(), par.total);

    let mut report = BenchReport::new("exp_planner", smoke);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (kind, rep, wall) in [
        ("planned", &planned, planned_wall),
        ("always-scan", &scanned, scanned_wall),
        ("worst", &worst, worst_wall),
        ("planned-par4", &par, par_wall),
    ] {
        let routing: Vec<String> =
            rep.per_index.iter().map(|r| format!("{}:{}", r.index, r.queries)).collect();
        rows.push(vec![
            kind.to_string(),
            format!("{}", queries.len()),
            format!("{}", rep.reads()),
            format!("{:.1}", wall * 1e3),
            routing.join(" "),
        ]);
        report
            .cell(format!("plan/{kind}"))
            .metric("queries", queries.len() as f64)
            .metric("read_ios", rep.reads() as f64)
            .metric("wall_s", wall)
            .report_wall(Duration::from_secs_f64(wall));
    }
    print_table(
        "Routing policies on the mixed workload (answers pinned identical)",
        &["policy", "queries", "reads", "wall_ms", "routing"],
        &rows,
    );

    // Per-class routing of the planned policy, for the table's readers.
    let mut by_class: Vec<(String, usize)> = Vec::new();
    for (qi, a) in planned_plan.assignments.iter().enumerate() {
        let name = set.structure(a.expect("routed")).name();
        let key = format!("{}->{}", class(&queries[qi]), name);
        match by_class.iter_mut().find(|(k, _)| *k == key) {
            Some((_, c)) => *c += 1,
            None => by_class.push((key, 1)),
        }
    }
    by_class.sort();
    println!("\nPlanned routing: {by_class:?}");
    println!(
        "\nGates: planned {} < always-scan {} and < worst {}; answers bit-identical to the \
         scan baseline on all {} queries; reopened catalog plans identically.",
        planned.reads(),
        scanned.reads(),
        worst.reads(),
        queries.len()
    );
    if smoke {
        report.write_default();
    }
}
