//! EXP-ADV — Section 1.2: heuristic spatial indexes degrade to Ω(n) IOs on
//! N points lying on a diagonal line when the query halfplane is bounded by
//! a slight perturbation of it, while the Theorem 3.5 structure stays at
//! O(log_B n + t).

use lcrs_baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs_bench::{mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::{HyperplaneD, PointD};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree, Partitioner};
use lcrs_workloads::{points2, Dist2};

fn main() {
    let page = 4096usize;
    let b = page / 20;
    println!("# EXP-ADV: adversarial diagonal input (paper §1.2), page={page}B");
    let mut rows = Vec::new();
    for e in [12usize, 13, 14, 15, 16] {
        let n_pts = 1usize << e;
        let pts = points2(Dist2::Diagonal, n_pts, 1 << 29, e as u64);
        let blocks = n_pts.div_ceil(b);
        // Queries: the paper's near-parallel perturbation of the diagonal
        // (empty output — pure structure overhead) and a generic query with
        // output T = B as a control.
        let (mq, cq) = lcrs_workloads::halfplane_with_selectivity(&pts, b, 64, e as u64);
        let qs = [(1i64, -1i64, 0usize), (mq, cq, b)];

        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let dev_kd = Device::new(DeviceConfig::new(page, 0));
        let kd = ExternalKdTree::build(&dev_kd, &pts);
        let dev_rt = Device::new(DeviceConfig::new(page, 0));
        let rt = StrRTree::build(&dev_rt, &pts);
        let dev_sc = Device::new(DeviceConfig::new(page, 0));
        let sc = ExternalScan::build(&dev_sc, &pts);
        let dev_pt = Device::new(DeviceConfig::new(page, 0));
        let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
        let pt = PartitionTree::build(&dev_pt, &ptpts, PTreeConfig::default());
        let dev_ph = Device::new(DeviceConfig::new(page, 0));
        let ph = PartitionTree::build(
            &dev_ph,
            &ptpts,
            PTreeConfig { partitioner: Partitioner::HamSandwich, ..Default::default() },
        );

        for &(m, c, t) in &qs {
            let mut cols = vec![format!("{n_pts}"), format!("{blocks}"), format!("{t}")];
            let (r, st) = hs.query_below_stats(m, c, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            let (r, st) = kd.query_below(m, c, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            let (r, st) = rt.query_below(m, c, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            let (r, st) = sc.query_below(m, c, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            let h = HyperplaneD::new([c, m]);
            let (r, st) = pt.query_halfspace_stats(&h, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            let (r, st) = ph.query_halfspace_stats(&h, false);
            assert_eq!(r.len(), t);
            cols.push(format!("{}", st.ios));
            rows.push(cols);
        }
    }
    print_table(
        "IOs on diagonal points, near-diagonal query (paper: heuristics Ω(n); Theorem 3.5 O(log_B n + t))",
        &["N", "n", "T", "hs2d", "kd-tree", "R-tree", "scan", "ptree-kd", "ptree-hs"],
        &rows,
    );

    // Sanity: the same structures on uniform data (no degradation there).
    let n_pts = 1usize << 15;
    let pts = points2(Dist2::Uniform, n_pts, 1 << 29, 99);
    let dev = Device::new(DeviceConfig::new(page, 0));
    let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
    let dev_kd = Device::new(DeviceConfig::new(page, 0));
    let kd = ExternalKdTree::build(&dev_kd, &pts);
    let mut hs_ios = Vec::new();
    let mut kd_ios = Vec::new();
    for q in 0..10u64 {
        let (m, c) = lcrs_workloads::halfplane_with_selectivity(&pts, b, 64, q);
        hs_ios.push(hs.query_below_stats(m, c, false).1.ios as f64);
        kd_ios.push(kd.query_below(m, c, false).1.ios as f64);
    }
    print_table(
        "control: uniform input, T = B",
        &["structure", "avg IOs"],
        &[
            vec!["hs2d".into(), format!("{:.1}", mean(&hs_ios))],
            vec!["kd-tree".into(), format!("{:.1}", mean(&kd_ios))],
        ],
    );
}
