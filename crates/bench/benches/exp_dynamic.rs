//! EXP-DYN — Remark (iii): dynamization by partial reconstruction. Measures
//! amortized insertion cost, the number of static parts (must stay
//! O(log n)), and the query overhead versus a monolithic static build.

use lcrs_bench::{mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::dynamic::DynamicHalfspace2;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_workloads::{halfplane_with_selectivity, points2, Dist2};

fn main() {
    let page = 4096usize;
    let b = page / 20;
    println!("# EXP-DYN: dynamization (paper Remark (iii)), page={page}B");
    let mut rows = Vec::new();
    for e in [12usize, 13, 14] {
        let n_pts = 1usize << e;
        let pts = points2(Dist2::Uniform, n_pts, 1 << 29, e as u64);

        // Dynamic: insert everything one by one.
        let dev = Device::new(DeviceConfig::new(page, 0));
        let mut dynamic = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
        let t0 = std::time::Instant::now();
        for (i, &(x, y)) in pts.iter().enumerate() {
            dynamic.insert(x, y, i as u64);
        }
        let insert_secs = t0.elapsed().as_secs_f64();
        let write_ios = dev.stats().writes;

        // Static reference.
        let dev_s = Device::new(DeviceConfig::new(page, 0));
        let fixed = HalfspaceRS2::build(&dev_s, &pts, Hs2dConfig::default());

        let mut dyn_ios = Vec::new();
        let mut stat_ios = Vec::new();
        for q in 0..10u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b, 64, q);
            dev.reset_stats();
            let r = dynamic.query_below(m, c, false);
            assert_eq!(r.len(), b);
            dyn_ios.push(dev.stats().reads as f64);
            stat_ios.push(fixed.query_below_stats(m, c, false).1.ios as f64);
        }
        rows.push(vec![
            format!("{n_pts}"),
            format!("{:.1}", insert_secs * 1e6 / n_pts as f64),
            format!("{:.2}", write_ios as f64 / n_pts as f64),
            format!("{}", dynamic.num_parts()),
            format!("{:.1}", mean(&dyn_ios)),
            format!("{:.1}", mean(&stat_ios)),
        ]);
    }
    print_table(
        "amortized insertion and query overhead (paper: O(log2 n · log_B n) amortized updates)",
        &[
            "N inserts",
            "µs/insert",
            "write IOs/insert",
            "parts",
            "dyn query IOs",
            "static query IOs",
        ],
        &rows,
    );

    // Mixed workload: deletes trigger compaction.
    let n_pts = 1usize << 13;
    let pts = points2(Dist2::Uniform, n_pts, 1 << 29, 5);
    let dev = Device::new(DeviceConfig::new(page, 0));
    let mut dynamic = DynamicHalfspace2::new(&dev, Hs2dConfig::default());
    for (i, &(x, y)) in pts.iter().enumerate() {
        dynamic.insert(x, y, i as u64);
    }
    for i in (0..n_pts as u64).step_by(2) {
        assert!(dynamic.remove(i));
    }
    let live: Vec<(i64, i64)> =
        pts.iter().enumerate().filter(|(i, _)| i % 2 == 1).map(|(_, p)| *p).collect();
    let (m, c) = halfplane_with_selectivity(&live, b, 64, 3);
    let got = dynamic.query_below(m, c, false);
    print_table(
        "after deleting half the points (tombstones + compaction)",
        &["live", "parts", "query matches"],
        &[vec![
            format!("{}", dynamic.len()),
            format!("{}", dynamic.num_parts()),
            format!("{}", got.len()),
        ]],
    );
}
