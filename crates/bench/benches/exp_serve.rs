//! EXP-SERVE — the windowed query server (DESIGN.md §14): time-window
//! batching with per-tenant IO quotas, replaying a deterministic
//! `serve_trace` arrival stream.
//!
//! One 2D dataset behind a calibrated three-structure [`IndexSet`] (hs2d,
//! kd-tree, scan), four tenants issuing interleaved hot-set and
//! sweep-ladder halfplane queries at seeded virtual arrival times. Cell
//! families:
//!
//! * `cold/N` — the no-server baseline: every admitted query planned and
//!   executed alone (each pays its cold read cost).
//! * `windowed/<max_wait_µs>` — the serving loop under a tight and a wide
//!   [`WindowPolicy`]. Asserted: aggregate read IOs strictly below the
//!   cold baseline (the window batching win), per-tenant attributed
//!   deltas summing exactly to the aggregate, and a replayed trace
//!   reproducing the read total bit-identically.
//! * `quota/throttled` — tenant 0 under an exhaustible IO quota.
//!   Asserted: tenant 0 collects typed `Rejected` outcomes while every
//!   other tenant's answers stay bit-identical to the unthrottled run.
//!
//! Read totals are virtual-time-deterministic (window boundaries and
//! admission never depend on the wall clock), so smoke cells are gated in
//! `BENCH_baseline.json` on their `read_ios` metric; wall throughput and
//! window-latency percentiles ride along as ungated metrics.

use std::time::{Duration, Instant};

use lcrs_baselines::{ExternalKdTree, ExternalScan};
use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{
    Arrival, IndexSet, Query, QueryServer, QuotaConfig, ServeConfig, ServeReport, ServeStatus,
    WindowPolicy,
};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_workloads::{halfplane_with_selectivity, points2, serve_trace, Dist2};

const PAGE: usize = 1024;
const CACHE_PAGES: usize = 32;
const TENANTS: u32 = 4;
const GAP_NS: u64 = 1000;
const SLOPE: i64 = 48;

/// A fresh calibrated 2D serving set (hs2d + kd-tree + scan last, so a
/// predicted-cost tie never breaks toward the scan).
fn build_set(dev: &Device, pts: &[(i64, i64)]) -> IndexSet {
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(dev, pts, Hs2dConfig::default())));
    set.add(Box::new(ExternalKdTree::build(dev, pts)));
    set.add(Box::new(ExternalScan::build(dev, pts)));
    let probes: Vec<Query> = (0..16)
        .map(|i| {
            let sel = (i + 1) * pts.len() / 20;
            let (m, c) = halfplane_with_selectivity(pts, sel, SLOPE, 900 + i as u64);
            Query::Halfplane { m, c, inclusive: false }
        })
        .collect();
    set.calibrate(&probes);
    set
}

fn arrivals(pts: &[(i64, i64)], len: usize) -> Vec<Arrival> {
    serve_trace(pts, TENANTS, len, GAP_NS, SLOPE, 42)
        .into_iter()
        .map(|op| Arrival {
            at_ns: op.at_ns,
            tenant: op.tenant,
            query: Query::Halfplane { m: op.m, c: op.c, inclusive: op.inclusive },
        })
        .collect()
}

/// Replay through a fresh server; returns the report and the wall time.
fn run_windowed(
    pts: &[(i64, i64)],
    stream: &[Arrival],
    policy: WindowPolicy,
    quota0: Option<QuotaConfig>,
) -> (ServeReport, f64) {
    let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let set = build_set(&dev, pts);
    let mut srv = QueryServer::new(set, ServeConfig { policy, workers: 1 });
    if let Some(q) = quota0 {
        srv.set_quota(0, q);
    }
    let t0 = Instant::now();
    let rep = srv.run_trace(stream, true);
    (rep, t0.elapsed().as_secs_f64())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 4096 } else { 16384 };
    let len = if smoke { 800 } else { 4000 };
    println!(
        "# EXP-SERVE: windowed serving vs one-at-a-time cold, page={PAGE}B, \
         cache={CACHE_PAGES} pages, {TENANTS} tenants{}",
        if smoke { " (smoke)" } else { "" }
    );

    let pts = points2(Dist2::Clustered, n, 1 << 20, 17);
    let stream = arrivals(&pts, len);
    let mut report = BenchReport::new("exp_serve", smoke);
    let mut rows = Vec::new();

    // The no-server baseline: each query planned and executed alone, so
    // none shares a warm cache with its neighbors.
    let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let set = build_set(&dev, &pts);
    let mut cold_reads = 0u64;
    let mut cold_answers: Vec<Vec<u64>> = Vec::with_capacity(stream.len());
    let t0 = Instant::now();
    for a in &stream {
        let one = [a.query];
        let plan = set.plan(&one);
        let rep = set.execute_plan(&one, &plan, true);
        cold_reads += rep.total.reads;
        cold_answers.push(rep.answers.unwrap().pop().unwrap());
    }
    let cold_secs = t0.elapsed().as_secs_f64();
    report
        .cell(format!("cold/{len}"))
        .metric("read_ios", cold_reads as f64)
        .metric("queries", len as f64)
        .report_wall(Duration::from_secs_f64(cold_secs));
    rows.push(vec![
        "cold (one-at-a-time)".to_string(),
        format!("{len}"),
        "-".to_string(),
        "0".to_string(),
        format!("{cold_reads}"),
        format!("{:.2}", cold_reads as f64 / len as f64),
        format!("{:.1}", len as f64 / cold_secs / 1e3),
        "-".to_string(),
    ]);

    // The serving loop under a tight and a wide window policy.
    let policies = [
        ("windowed/4000us", WindowPolicy { max_wait_ns: 4 * GAP_NS, max_queries: 32 }),
        ("windowed/16000us", WindowPolicy { max_wait_ns: 16 * GAP_NS, max_queries: 128 }),
    ];
    let mut unthrottled_answers = None;
    for (id, policy) in policies {
        let (rep, secs) = run_windowed(&pts, &stream, policy, None);
        assert_eq!(rep.rejected(), 0);
        assert!(
            rep.reads() < cold_reads,
            "{id}: windowed reads {} must beat one-at-a-time cold {cold_reads}",
            rep.reads()
        );
        let per_tenant = rep.per_tenant_io();
        assert_eq!(
            per_tenant.iter().map(|&(_, d)| d.reads).sum::<u64>(),
            rep.reads(),
            "{id}: per-tenant reads must sum exactly to the aggregate"
        );
        // Windowing only changes page residency, never answers.
        for (i, ans) in rep.answers.as_ref().unwrap().iter().enumerate() {
            let mut got = ans.clone();
            let mut want = cold_answers[i].clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{id}: arrival {i} diverged from the cold run");
        }
        // Virtual-time determinism: a replay reproduces the read total.
        let (rep2, _) = run_windowed(&pts, &stream, policy, None);
        assert_eq!(rep.reads(), rep2.reads(), "{id}: replay must be bit-deterministic");

        let walls: Vec<u64> = rep.windows.iter().map(|w| w.wall_ns).collect();
        let p99 = {
            let mut s = walls.clone();
            s.sort_unstable();
            s[((s.len() - 1) * 99) / 100]
        };
        report
            .cell(id)
            .metric("read_ios", rep.reads() as f64)
            .metric("queries", len as f64)
            .metric("windows", rep.windows.len() as f64)
            .metric("window_p99_ns", p99 as f64)
            .report_wall(Duration::from_secs_f64(secs));
        rows.push(vec![
            id.to_string(),
            format!("{len}"),
            format!("{}", rep.windows.len()),
            "0".to_string(),
            format!("{}", rep.reads()),
            format!("{:.2}", rep.reads() as f64 / len as f64),
            format!("{:.1}", len as f64 / secs / 1e3),
            format!("{:.2}", p99 as f64 / 1e6),
        ]);
        if id.ends_with("16000us") {
            unthrottled_answers = rep.answers.clone();
        }
    }

    // Admission control: tenant 0 on an exhaustible quota under the wide
    // policy; other tenants must not notice.
    let wide = policies[1].1;
    let quota = QuotaConfig { capacity: 256, refill: 16, interval_ns: 1_000_000 };
    let (rep, secs) = run_windowed(&pts, &stream, wide, Some(quota));
    let rejected = rep.rejected();
    assert!(rejected > 0, "tenant 0 must exhaust its {}-token quota", quota.capacity);
    assert!(
        rep.outcomes
            .iter()
            .filter(|o| matches!(o.status, ServeStatus::Rejected(_)))
            .all(|o| o.tenant == 0),
        "only the throttled tenant is ever rejected"
    );
    let free = unthrottled_answers.expect("wide unthrottled run kept answers");
    let thr = rep.answers.as_ref().unwrap();
    for (i, a) in stream.iter().enumerate() {
        if a.tenant != 0 {
            assert_eq!(thr[i], free[i], "arrival {i}: tenant {} answers must not move", a.tenant);
        }
    }
    report
        .cell("quota/throttled")
        .metric("read_ios", rep.reads() as f64)
        .metric("queries", len as f64)
        .metric("rejections", rejected as f64)
        .metric("windows", rep.windows.len() as f64)
        .report_wall(Duration::from_secs_f64(secs));
    rows.push(vec![
        "quota/throttled (tenant 0)".to_string(),
        format!("{len}"),
        format!("{}", rep.windows.len()),
        format!("{rejected}"),
        format!("{}", rep.reads()),
        format!("{:.2}", rep.reads() as f64 / len as f64),
        format!("{:.1}", len as f64 / secs / 1e3),
        "-".to_string(),
    ]);

    print_table(
        "windowed serving vs one-at-a-time cold (answers pinned cold-identical; \
         per-tenant deltas sum exactly to the aggregate)",
        &[
            "cell",
            "arrivals",
            "windows",
            "rejected",
            "read IOs",
            "IOs/query",
            "kq/s",
            "p99 window ms",
        ],
        &rows,
    );

    if smoke {
        report.write_default();
    }
}
