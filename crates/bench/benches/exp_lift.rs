//! EXP-LIFT — the lifted and annotated query classes (DESIGN.md §15):
//! what the reductions buy in read IOs over answering the same questions
//! from the flat 2D representation.
//!
//! Two comparisons, both differential (answers pinned bit-identical to the
//! exact host-side brute force before any IO number is reported):
//!
//! * **disk via lift vs 2D scan** — [`Query::Disk`] answered by the
//!   paraboloid-lifted 3D structure (`lift-hs3d`) versus the Θ(n/B) 2D
//!   scan, cold cache per query, on the bounded-radius (output-sensitive)
//!   regime the lift targets: `disk_mixed` draws whose r² exceeds the
//!   sweep radius report a constant fraction of the dataset, where any
//!   structure degenerates to a leaf sweep, so they are dropped up front
//!   (the count is printed — nothing is excluded silently). The lift must
//!   cost strictly fewer total read IOs on what remains.
//! * **count/sum via annotation vs enumerate-then-count** — the same
//!   `(m, c, inclusive)` aggregates answered from the internal-node
//!   weight annotations ([`Query::Count`]/[`Query::Sum`]) versus running
//!   the full [`Query::Halfplane`] report and counting/summing host-side.
//!   Annotated must cost strictly fewer page reads. The k-d tree wins
//!   across the whole `aggregate_mixed` coverage range (subtree weights
//!   cut off every fully-below branch). The 2D halfspace structure pays
//!   a per-cluster annotation sidecar on top of its line pages, so its
//!   certificates only pay off once whole clusters are fully below —
//!   above ≈70% coverage on this fixture — and it is measured on a
//!   70–98% coverage sweep, the regime the aggregate classes target.
//!
//! Run with `--smoke` for the CI-sized variant (which also emits
//! `BENCH_exp_lift.json` for the read-IO regression gate).

use std::time::{Duration, Instant};

use lcrs_baselines::{ExternalKdTree, ExternalScan};
use lcrs_bench::{brute_answer, canon_answer, print_table, BenchReport};
use lcrs_engine::{decode_sum, BatchExecutor, LiftedIndex, LiftedKind, Query, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_workloads::{aggregate_mixed, disk_mixed, halfplane_with_selectivity, points2, Dist2};

const PAGE: usize = 4096;
const CACHE_PAGES: usize = 128;
const R_MAX: i64 = 200;

/// Cold-cache batch on one structure; answers kept for the differential
/// gates, per-query attribution asserted exact.
fn run_cold(index: &dyn RangeIndex, queries: &[Query]) -> (Vec<Vec<u64>>, u64, f64) {
    let ex = BatchExecutor::new(index).keep_answers(true);
    let t0 = Instant::now();
    let report = ex.run_cold(queries);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.attributed_total(), report.total, "{}: attribution", index.name());
    assert_eq!(report.unsupported(), 0, "{}: all queries supported", index.name());
    let reads = report.reads();
    (report.answers.unwrap(), reads, wall)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, q_disk, q_agg) = if smoke { (16384, 80, 80) } else { (32768, 160, 160) };
    println!(
        "# EXP-LIFT: lifted disks vs 2D scan, annotated aggregates vs \
         enumerate-then-count, page={PAGE}B, cache={CACHE_PAGES} pages, cold per query{}",
        if smoke { " (smoke)" } else { "" }
    );

    let pts = points2(Dist2::Uniform, n2, 1000, 61);
    let mut report = BenchReport::new("exp_lift", smoke);
    let mut rows: Vec<Vec<String>> = Vec::new();
    let cell = |report: &mut BenchReport,
                rows: &mut Vec<Vec<String>>,
                name: &str,
                queries: usize,
                reads: u64,
                wall: f64| {
        rows.push(vec![
            name.to_string(),
            format!("{queries}"),
            format!("{reads}"),
            format!("{:.1}", wall * 1e3),
        ]);
        report
            .cell(name)
            .metric("queries", queries as f64)
            .metric("read_ios", reads as f64)
            .metric("wall_s", wall)
            .report_wall(Duration::from_secs_f64(wall));
    };

    // ── Disk via lift vs 2D scan ────────────────────────────────────────
    let raw = disk_mixed(&pts, 3 * q_disk, R_MAX, 91);
    let dropped = raw.iter().filter(|&&(_, _, r2, _)| r2 > R_MAX * R_MAX).count();
    let disks: Vec<Query> = raw
        .into_iter()
        .filter(|&(_, _, r2, _)| r2 <= R_MAX * R_MAX)
        .take(q_disk)
        .map(|(x, y, r2, inclusive)| Query::Disk { x, y, r2, inclusive })
        .collect();
    assert_eq!(disks.len(), q_disk, "enough bounded-radius draws");
    println!(
        "disk workload: {q_disk} bounded-radius queries kept (r² ≤ {}); {dropped} of {} raw \
         draws were beyond the sweep radius and excluded",
        R_MAX * R_MAX,
        3 * q_disk
    );
    let dev_lift = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev_scan = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let lift = LiftedIndex::build(&dev_lift, &pts, LiftedKind::Hs3d);
    let scan = ExternalScan::build(&dev_scan, &pts);

    let (lift_answers, lift_reads, lift_wall) = run_cold(&lift, &disks);
    let (scan_answers, scan_reads, scan_wall) = run_cold(&scan, &disks);
    for (qi, q) in disks.iter().enumerate() {
        let want = brute_answer(q, &pts, &[]);
        assert_eq!(canon_answer(q, lift_answers[qi].clone()), want, "q{qi} {q:?}: lift");
        assert_eq!(canon_answer(q, scan_answers[qi].clone()), want, "q{qi} {q:?}: scan");
    }
    assert!(
        lift_reads < scan_reads,
        "lifted disks {lift_reads} read IOs must strictly beat the 2D scan {scan_reads}"
    );
    cell(&mut report, &mut rows, "disk/lift-hs3d", disks.len(), lift_reads, lift_wall);
    cell(&mut report, &mut rows, "disk/scan2d", disks.len(), scan_reads, scan_wall);

    // ── Count/Sum via annotation vs enumerate-then-count ────────────────
    // The same (m, c, inclusive) triples, posed twice: as aggregates
    // (annotation-pruned) and as full halfplane reports whose ids are
    // counted/summed host-side.
    let devs: Vec<Device> =
        (0..4).map(|_| Device::new(DeviceConfig::new(PAGE, CACHE_PAGES))).collect();
    let hs_ann = HalfspaceRS2::build(&devs[0], &pts, Hs2dConfig::default());
    let hs_enum = HalfspaceRS2::build(&devs[1], &pts, Hs2dConfig::default());
    let kd_ann = ExternalKdTree::build(&devs[2], &pts);
    let kd_enum = ExternalKdTree::build(&devs[3], &pts);

    // Mixed coverage (t from 0 to n/2) for the k-d tree; a 70–98% coverage
    // sweep for the 2D halfspace structure, whose cluster certificates
    // only overtake the sidecar cost at high coverage.
    let mixed_params = aggregate_mixed(&pts, q_agg, 48, 92);
    let high_params: Vec<(i64, i64, bool, bool)> = (0..q_agg)
        .map(|i| {
            let t = n2 * 70 / 100 + i * (n2 * 28 / 100) / q_agg;
            let (m, c) = halfplane_with_selectivity(&pts, t, 48, 7700 + i as u64);
            (m, c, i % 3 != 0, i % 2 == 1)
        })
        .collect();

    let legs: [(&str, &str, &dyn RangeIndex, &dyn RangeIndex, &[(i64, i64, bool, bool)]); 2] = [
        ("agg-mixed", "kdtree", &kd_ann, &kd_enum, &mixed_params),
        ("agg-high", "hs2d", &hs_ann, &hs_enum, &high_params),
    ];
    for (regime, name, ann_index, enum_index, params) in legs {
        let aggs: Vec<Query> = params
            .iter()
            .map(|&(m, c, inclusive, sum)| {
                if sum {
                    Query::Sum { m, c, inclusive }
                } else {
                    Query::Count { m, c, inclusive }
                }
            })
            .collect();
        let reports: Vec<Query> = params
            .iter()
            .map(|&(m, c, inclusive, _)| Query::Halfplane { m, c, inclusive })
            .collect();

        let (ann_answers, ann_reads, ann_wall) = run_cold(ann_index, &aggs);
        let (enum_answers, enum_reads, enum_wall) = run_cold(enum_index, &reports);
        for (qi, q) in aggs.iter().enumerate() {
            assert_eq!(canon_answer(q, ann_answers[qi].clone()), brute_answer(q, &pts, &[]));
            let ids = &enum_answers[qi];
            let host = match *q {
                Query::Count { .. } => vec![ids.len() as u64],
                Query::Sum { .. } => lcrs_engine::encode_sum(
                    ids.iter()
                        .map(|&id| {
                            let (x, y) = pts[id as usize];
                            x as i128 + y as i128
                        })
                        .sum(),
                ),
                _ => unreachable!(),
            };
            assert_eq!(
                ann_answers[qi],
                host,
                "q{qi} {q:?} on {name}: annotation must agree with enumerate-then-count \
                 (decoded sum {:?})",
                decode_sum(&ann_answers[qi])
            );
        }
        assert!(
            ann_reads < enum_reads,
            "{regime}/{name}: annotated aggregates {ann_reads} page reads must be strictly \
             below enumerate-then-count {enum_reads}"
        );
        let ann_cell = format!("{regime}/{name}-annotated");
        let enum_cell = format!("{regime}/{name}-enumerate");
        cell(&mut report, &mut rows, &ann_cell, aggs.len(), ann_reads, ann_wall);
        cell(&mut report, &mut rows, &enum_cell, aggs.len(), enum_reads, enum_wall);
    }

    print_table(
        "Lifted and annotated classes vs flat execution (answers pinned to brute force)",
        &["cell", "queries", "reads", "wall_ms"],
        &rows,
    );
    println!(
        "\nGates: disk lift {lift_reads} < scan {scan_reads}; annotated aggregates strictly \
         below enumerate-then-count (kdtree on mixed coverage, hs2d on the 70-98% coverage \
         sweep); all answers bit-identical to brute force."
    );
    if smoke {
        report.write_default();
    }
}
