//! EXP-T1-2D — Table 1, row d = 2: the Theorem 3.5 structure uses O(n)
//! blocks and answers queries in O(log_B n + t) IOs, worst case.
//!
//! Reproduced shapes: (a) query IOs flat in n at fixed output T = B;
//! (b) IOs growing linearly in t = T/B with slope O(1); (c) space within a
//! small constant of the n = N/B lower bound — on uniform, bell-shaped and
//! the adversarial diagonal inputs alike.

use lcrs_bench::{loglog_slope, mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_workloads::{halfplane_with_selectivity, points2, Dist2};

fn avg_query_ios(hs: &HalfspaceRS2, pts: &[(i64, i64)], t: usize, trials: usize) -> (f64, f64) {
    let mut ios = Vec::new();
    let mut rep = Vec::new();
    for q in 0..trials {
        let (m, c) = halfplane_with_selectivity(pts, t, 64, 1000 + q as u64);
        let (res, st) = hs.query_below_stats(m, c, false);
        assert_eq!(res.len(), t, "selectivity generator must be exact");
        ios.push(st.ios as f64);
        rep.push(res.len() as f64);
    }
    (mean(&ios), mean(&rep))
}

fn main() {
    let page = 4096usize;
    let rec = 20; // LineRec bytes
    let b = page / rec;
    println!("# EXP-T1-2D: Theorem 3.5 (optimal 2D structure), page={page}B, B={b} recs");

    // (a) IOs vs n at fixed T = B.
    let mut rows = Vec::new();
    for dist in [Dist2::Uniform, Dist2::Gaussianish, Dist2::Diagonal] {
        let mut ns = Vec::new();
        let mut qs = Vec::new();
        for e in [12usize, 13, 14, 15, 16] {
            let n_pts = 1usize << e;
            let pts = points2(dist, n_pts, 1 << 29, e as u64);
            let dev = Device::new(DeviceConfig::new(page, 0));
            let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
            let (io, _) = avg_query_ios(&hs, &pts, b, 12);
            let blocks = n_pts.div_ceil(b);
            rows.push(vec![
                format!("{dist:?}"),
                format!("{n_pts}"),
                format!("{blocks}"),
                format!("{:.1}", io),
                format!("{}", hs.pages()),
                format!("{:.2}", hs.pages() as f64 / blocks as f64),
                format!("{}", hs.num_clusterings()),
            ]);
            ns.push(blocks as f64);
            qs.push(io);
        }
        let slope = loglog_slope(&ns, &qs);
        rows.push(vec![
            format!("{dist:?}"),
            "slope".into(),
            "-".into(),
            format!("{:.3}", slope),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    print_table(
        "query IOs vs n at fixed T = B (paper: O(log_B n + 1) — near-flat slope)",
        &["dist", "N", "n=N/B", "avg IOs", "space pages", "space/n", "m"],
        &rows,
    );

    // (b) IOs vs t at fixed n.
    let n_pts = 1usize << 15;
    let mut rows = Vec::new();
    for dist in [Dist2::Uniform, Dist2::Diagonal] {
        let pts = points2(dist, n_pts, 1 << 29, 77);
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let mut ts = Vec::new();
        let mut qs = Vec::new();
        for t in [0usize, b / 2, b, 4 * b, 16 * b, 64 * b, n_pts / 2] {
            let (io, _) = avg_query_ios(&hs, &pts, t, 10);
            rows.push(vec![
                format!("{dist:?}"),
                format!("{t}"),
                format!("{}", t.div_ceil(b)),
                format!("{:.1}", io),
                format!("{:.2}", if t >= b { io / (t as f64 / b as f64) } else { f64::NAN }),
            ]);
            if t > 0 {
                ts.push(t as f64 / b as f64);
                qs.push(io);
            }
        }
        rows.push(vec![
            format!("{dist:?}"),
            "slope".into(),
            "-".into(),
            format!("{:.3}", loglog_slope(&ts, &qs)),
            "-".into(),
        ]);
    }
    print_table(
        &format!(
            "query IOs vs output at N = {n_pts} (paper: O(log_B n + t) — slope ≈ 1, IOs/t = O(1))"
        ),
        &["dist", "T", "t=T/B", "avg IOs", "IOs per t"],
        &rows,
    );

    // (c) sensitivity to the block size B.
    let n_pts = 1usize << 15;
    let pts = points2(Dist2::Uniform, n_pts, 1 << 29, 55);
    let mut rows = Vec::new();
    for page in [1024usize, 2048, 4096, 8192] {
        let bb = page / rec;
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let (io_small, _) = avg_query_ios(&hs, &pts, bb, 10);
        let (io_big, _) = avg_query_ios(&hs, &pts, 32 * bb, 10);
        rows.push(vec![
            format!("{page}"),
            format!("{bb}"),
            format!("{}", n_pts.div_ceil(bb)),
            format!("{:.1}", io_small),
            format!("{:.1}", io_big),
            format!("{}", hs.pages()),
            format!("{}", hs.num_clusterings()),
        ]);
    }
    print_table(
        &format!("block-size sensitivity at N = {n_pts} (larger B ⇒ fewer IOs across the board)"),
        &["page bytes", "B", "n", "IOs (T=B)", "IOs (T=32B)", "space pages", "m"],
        &rows,
    );
}
