//! EXP-T1-3D — Table 1, rows d = 3: the Theorem 4.4 structure uses
//! O(n log₂ n) expected blocks and answers queries in O(log_B n + t)
//! *expected* IOs.

use lcrs_bench::{mean, percentile, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_workloads::{halfspace3_with_selectivity, points3, Dist3};

fn query_ios(hs: &HalfspaceRS3, pts: &[(i64, i64, i64)], t: usize, trials: usize) -> Vec<f64> {
    let mut ios = Vec::new();
    for q in 0..trials {
        let (u, v, w) = halfspace3_with_selectivity(pts, t, 32, 500 + q as u64);
        let (res, st) = hs.query_below_stats(u, v, w, false);
        assert_eq!(res.len(), t);
        ios.push(st.ios as f64);
    }
    ios
}

fn main() {
    let page = 4096usize;
    let b = page / 28; // ConfRec bytes
    println!("# EXP-T1-3D: Theorem 4.4 (3D structure), page={page}B, B={b} recs");

    let mut rows = Vec::new();
    for dist in [Dist3::Uniform, Dist3::Clustered] {
        for e in [12usize, 13, 14, 15, 16] {
            let n_pts = 1usize << e;
            let pts = points3(dist, n_pts, 1 << 19, e as u64);
            let dev = Device::new(DeviceConfig::new(page, 0));
            let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
            let ios = query_ios(&hs, &pts, b, 12);
            let blocks = n_pts.div_ceil(b);
            let nlogn = blocks as f64 * (blocks.max(2) as f64).log2();
            rows.push(vec![
                format!("{dist:?}"),
                format!("{n_pts}"),
                format!("{blocks}"),
                format!("{:.1}", mean(&ios)),
                format!("{:.0}", percentile(&ios, 90.0)),
                format!("{}", hs.pages()),
                format!("{:.2}", hs.pages() as f64 / nlogn),
                format!("{}", hs.num_layers()),
            ]);
        }
    }
    print_table(
        "expected query IOs vs n at fixed T = B; space vs n·log2(n) (paper: O(log_B n + t) expected, O(n log2 n) blocks)",
        &["dist", "N", "n", "avg IOs", "p90 IOs", "space pages", "space/(n·lg n)", "layers"],
        &rows,
    );

    // IOs vs t.
    let n_pts = 1usize << 15;
    let pts = points3(Dist3::Uniform, n_pts, 1 << 19, 3);
    let dev = Device::new(DeviceConfig::new(page, 0));
    let hs = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
    let mut rows = Vec::new();
    for t in [0usize, b, 4 * b, 16 * b, 64 * b] {
        let ios = query_ios(&hs, &pts, t, 10);
        rows.push(vec![
            format!("{t}"),
            format!("{}", t.div_ceil(b)),
            format!("{:.1}", mean(&ios)),
            format!("{:.2}", if t >= b { mean(&ios) / (t as f64 / b as f64) } else { f64::NAN }),
        ]);
    }
    print_table(
        &format!("query IOs vs output at N = {n_pts} (expected O(log_B n + t))"),
        &["T", "t=T/B", "avg IOs", "IOs per t"],
        &rows,
    );
}
