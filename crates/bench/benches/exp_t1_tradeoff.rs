//! EXP-T1-TRD — Table 1, 3D trade-off rows (Section 6): the hybrid tree
//! (Theorem 6.1, O(n log₂ B) space, O((n/B^{a-1})^{2/3+ε} + t) IOs) and the
//! shallow tree (Theorem 6.3, O(n log_B n) space, O(n^ε + t) IOs) sit
//! between the linear-space partition tree and the O(n log₂ n)-space
//! Theorem 4.4 structure on both axes.

use lcrs_bench::{mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs_workloads::{halfspace3_with_selectivity, points3, Dist3};

fn main() {
    let page = 4096usize;
    let n_pts = 1usize << 15;
    let b = page / 28;
    let blocks = n_pts.div_ceil(b);
    println!("# EXP-T1-TRD: Section 6 space/query trade-offs, N={n_pts}, page={page}B");

    let pts = points3(Dist3::Uniform, n_pts, 1 << 19, 9);
    let mut queries: Vec<(i64, i64, i64, usize)> = Vec::new();
    for &t in &[0usize, b, 8 * b, 64 * b] {
        for q in 0..6u64 {
            let (u, v, w) = halfspace3_with_selectivity(&pts, t, 32, 31 * q + t as u64);
            queries.push((u, v, w, t));
        }
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut run = |name: &str, pages: u64, mut q: Box<dyn FnMut(i64, i64, i64) -> (usize, u64)>| {
        for &t in &[0usize, b, 8 * b, 64 * b] {
            let mut ios = Vec::new();
            for &(u, v, w, qt) in queries.iter().filter(|x| x.3 == t) {
                let (rep, io) = q(u, v, w);
                assert_eq!(rep, qt);
                ios.push(io as f64);
            }
            rows.push(vec![
                name.into(),
                format!("{pages}"),
                format!("{:.2}", pages as f64 / blocks as f64),
                format!("{}", t / b.max(1)),
                format!("{:.1}", mean(&ios)),
            ]);
        }
    };

    {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let ptpts: Vec<PointD<3>> = pts.iter().map(|&(x, y, z)| PointD::new([x, y, z])).collect();
        let t = PartitionTree::build(&dev, &ptpts, PTreeConfig::default());
        let pages = t.pages();
        run(
            "ptree (O(n) space)",
            pages,
            Box::new(move |u, v, w| {
                let h = lcrs_geom::point::HyperplaneD::new([w, u, v]);
                let (res, st) = t.query_halfspace_stats(&h, false);
                (res.len(), st.ios)
            }),
        );
    }
    for a in [1.25f64, 1.5, 2.0] {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let t = HybridTree3::build(&dev, &pts, HybridConfig { a, ..Default::default() });
        let pages = t.pages();
        run(
            &format!("hybrid a={a}"),
            pages,
            Box::new(move |u, v, w| {
                let (res, st) = t.query_below_stats(u, v, w, false);
                (res.len(), st.ios)
            }),
        );
    }
    {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let t = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
        let pages = t.pages();
        run(
            "shallow (O(n log_B n))",
            pages,
            Box::new(move |u, v, w| {
                let (res, st) = t.query_below_stats(u, v, w, false);
                (res.len(), st.ios)
            }),
        );
    }
    {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let t = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let pages = t.pages();
        run(
            "hs3d (O(n log2 n))",
            pages,
            Box::new(move |u, v, w| {
                let (res, st) = t.query_below_stats(u, v, w, false);
                (res.len(), st.ios)
            }),
        );
    }
    print_table(
        "space vs query IOs across the trade-off spectrum (paper Table 1, d=3 rows)",
        &["structure", "space pages", "space/n", "t", "avg IOs"],
        &rows,
    );
}
