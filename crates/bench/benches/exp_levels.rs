//! EXP-LEVELS — Section 2.3 / Lemma 2.2 (quantitative analogue of Fig. 2):
//! measured k-level complexity of line arrangements.
//!
//! Checks: (a) the k-level vertex count stays below Dey's O(N·(k+1)^{1/3})
//! bound; (b) the *expected* complexity of a random level in [β, 2β] is
//! O(N) (Lemma 2.2 with d=2), the fact the 2D construction relies on.

use lcrs_bench::{mean, print_table};
use lcrs_geom::level::level_vertices;
use lcrs_geom::line2::Line2;
use lcrs_workloads::{points2, Dist2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dual_lines(n: usize, seed: u64) -> Vec<Line2> {
    // Dual lines of uniform points; dedup slopes collisions are fine (the
    // generator returns distinct points whp, dedup to be safe).
    let pts = points2(Dist2::Uniform, n + 16, 1 << 29, seed);
    let mut ls: Vec<Line2> = pts.iter().map(|&(x, y)| Line2::new(-x, y)).collect();
    ls.sort_by_key(|l| (l.m, l.b));
    ls.dedup();
    ls.truncate(n);
    ls
}

fn main() {
    println!("# EXP-LEVELS: k-level complexity (Lemma 2.2, Dey's bound)");
    let mut rows = Vec::new();
    for n in [256usize, 512, 1024, 2048] {
        let lines = dual_lines(n, n as u64);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        for k in [1usize, (n as f64).sqrt() as usize, n / 2] {
            let v = level_vertices(&lines, &ids, k).len();
            let dey = n as f64 * ((k + 1) as f64).powf(1.0 / 3.0);
            rows.push(vec![
                format!("{n}"),
                format!("{k}"),
                format!("{v}"),
                format!("{:.2}", v as f64 / n as f64),
                format!("{:.3}", v as f64 / dey),
            ]);
        }
    }
    print_table(
        "k-level vertex counts (paper: O(N·k^{1/3}) worst case — ratio must stay < 1)",
        &["N", "k", "vertices", "vertices/N", "vs Dey bound"],
        &rows,
    );

    // Random level in [β, 2β]: expected complexity O(N).
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for n in [512usize, 1024, 2048] {
        let beta = 64usize;
        let lines = dual_lines(n, 3 * n as u64);
        let ids: Vec<u32> = (0..lines.len() as u32).collect();
        let mut sizes = Vec::new();
        for _ in 0..8 {
            let k = rng.gen_range(beta..=2 * beta);
            sizes.push(level_vertices(&lines, &ids, k).len() as f64);
        }
        rows.push(vec![
            format!("{n}"),
            format!("[{beta},{}]", 2 * beta),
            format!("{:.0}", mean(&sizes)),
            format!("{:.2}", mean(&sizes) / n as f64),
        ]);
    }
    print_table(
        "expected complexity of a random level in [β,2β] (Lemma 2.2: O(N) for d=2)",
        &["N", "level range", "avg vertices", "avg/N"],
        &rows,
    );
}
