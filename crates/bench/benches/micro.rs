//! Criterion micro-benchmarks guarding the performance of the hot
//! primitives (not paper artifacts; the paper tables come from the exp_*
//! harnesses).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lcrs_extmem::btree::BPlusTree;
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::envelope::LowerEnvelope;
use lcrs_geom::level::level_vertices;
use lcrs_geom::line2::Line2;
use lcrs_geom::rational::Rat;
use lcrs_workloads::{points2, Dist2};

fn lines(n: usize, seed: u64) -> Vec<Line2> {
    let pts = points2(Dist2::Uniform, n + 8, 1 << 29, seed);
    let mut ls: Vec<Line2> = pts.iter().map(|&(x, y)| Line2::new(-x, y)).collect();
    ls.sort_by_key(|l| (l.m, l.b));
    ls.dedup();
    ls.truncate(n);
    ls
}

fn bench_predicates(c: &mut Criterion) {
    let ls = lines(1024, 1);
    c.bench_function("line2_cmp_at_plus", |bch| {
        let x = Rat::new(12345, 677);
        bch.iter(|| {
            let mut acc = 0usize;
            for w in ls.windows(2) {
                if w[0].cmp_at_plus(&w[1], x) == std::cmp::Ordering::Less {
                    acc += 1;
                }
            }
            acc
        })
    });
}

fn bench_envelope(c: &mut Criterion) {
    let ls = lines(2048, 2);
    let ids: Vec<u32> = (0..ls.len() as u32).collect();
    c.bench_function("lower_envelope_2048", |bch| {
        bch.iter(|| LowerEnvelope::build(&ls, &ids).chain.len())
    });
}

fn bench_level_walk(c: &mut Criterion) {
    let ls = lines(512, 3);
    let ids: Vec<u32> = (0..ls.len() as u32).collect();
    c.bench_function("level_walk_512_k64", |bch| bch.iter(|| level_vertices(&ls, &ids, 64).len()));
}

fn bench_btree(c: &mut Criterion) {
    let dev = Device::new(DeviceConfig::new(4096, 0));
    let pairs: Vec<(i64, i64)> = (0..100_000).map(|i| (i, i)).collect();
    let tree = BPlusTree::bulk_load(&dev, &pairs);
    c.bench_function("btree_get_100k", |bch| {
        let mut k = 0i64;
        bch.iter(|| {
            k = (k + 37) % 100_000;
            tree.get(&k)
        })
    });
    c.bench_function("btree_bulk_load_10k", |bch| {
        let pairs: Vec<(i64, i64)> = (0..10_000).map(|i| (i, i)).collect();
        bch.iter_batched(
            || Device::new(DeviceConfig::new(4096, 0)),
            |dev| BPlusTree::bulk_load(&dev, &pairs).len(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_hull3(c: &mut Criterion) {
    use lcrs_geom::hull3::LowerHull;
    use lcrs_geom::plane3::Plane3;
    let pts = lcrs_workloads::points3(lcrs_workloads::Dist3::Uniform, 2000, 1 << 19, 4);
    let planes: Vec<Plane3> = pts.iter().map(|&(a, b, cc)| Plane3::new(a, b, cc)).collect();
    c.bench_function("hull3_insert_2000", |bch| {
        bch.iter(|| {
            let mut h = LowerHull::new(&planes);
            h.insert_until(planes.len());
            h.snapshot().len()
        })
    });
}

fn bench_queries(c: &mut Criterion) {
    use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
    use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
    use lcrs_workloads::{halfplane_with_selectivity, halfspace3_with_selectivity, points3, Dist3};

    let pts2 = points2(Dist2::Uniform, 20_000, 1 << 29, 5);
    let dev = Device::new(DeviceConfig::new(4096, 0));
    let hs2 = HalfspaceRS2::build(&dev, &pts2, Hs2dConfig::default());
    let (m, cc) = halfplane_with_selectivity(&pts2, 200, 64, 9);
    c.bench_function("hs2d_query_t200_n20k", |bch| {
        bch.iter(|| hs2.query_below(m, cc, false).len())
    });

    let pts3v = points3(Dist3::Uniform, 20_000, 1 << 19, 6);
    let dev3 = Device::new(DeviceConfig::new(4096, 0));
    let hs3 = HalfspaceRS3::build(&dev3, &pts3v, Hs3dConfig::default());
    let (u, v, w) = halfspace3_with_selectivity(&pts3v, 200, 32, 9);
    c.bench_function("hs3d_query_t200_n20k", |bch| {
        bch.iter(|| hs3.query_below(u, v, w, false).len())
    });

    use lcrs_geom::point::{HyperplaneD, PointD};
    use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
    let ptpts: Vec<PointD<2>> = pts2.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    let devp = Device::new(DeviceConfig::new(4096, 0));
    let pt = PartitionTree::build(&devp, &ptpts, PTreeConfig::default());
    let h = HyperplaneD::new([cc, m]);
    c.bench_function("ptree2_query_t200_n20k", |bch| {
        bch.iter(|| pt.query_halfspace(&h, false).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_predicates, bench_envelope, bench_level_walk, bench_btree, bench_hull3, bench_queries
}
criterion_main!(benches);
