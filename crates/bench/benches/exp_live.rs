//! EXP-LIVE — live-update serving (DESIGN.md §12): the LSM-style
//! [`LiveIndex`] measured against the logarithmic-method cost shape from
//! paper §7 (Remark (iii)).
//!
//! Three cell families, all on cache-less devices so every page touch is
//! one IO and totals are bit-deterministic:
//!
//! * `ingest/N` — N one-by-one inserts. Asserted: total ingest IOs stay
//!   within a constant factor of `levels × static-build(N)` where
//!   `levels = ceil(log2(N/cap)) + 1` — the Bentley–Saxe amortized bound
//!   (each record participates in at most `levels` level builds) — and
//!   the part count stays ≤ `levels + 1` (the O(log n) query-overhead
//!   shape).
//! * `query/N` — a seeded fixed-selectivity batch against the ingested
//!   index; answers pinned bit-identical to a host-side scan.
//! * `trace/L` — an interleaved insert/delete/query `live_trace` with
//!   background merges beginning and committing on a fixed schedule;
//!   every 10th query differentially checked against a host model, and
//!   the whole run's IO total reported (worker-thread build IOs land in
//!   the same accounting scope, so the total is schedule-deterministic).
//!
//! Run with `--smoke` for the CI-sized variant; smoke cells are gated in
//! `BENCH_baseline.json` on their `read_ios` metric.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{LiveIndex, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_workloads::{halfplane_with_selectivity, live_trace, points2, Dist2, TraceMix, TraceOp};

const PAGE: usize = 1024;
const DELTA_CAP: usize = 64;

/// `ceil(log2(n/cap)) + 1`: how many level builds one record can be
/// swept into under geometric doubling from a `cap`-sized delta.
fn level_bound(n: usize, cap: usize) -> u64 {
    ((n as f64 / cap as f64).log2().ceil() as u64).max(1) + 1
}

fn host_below(pts: &[(i64, i64)], m: i64, c: i64, inclusive: bool) -> Vec<u64> {
    pts.iter()
        .enumerate()
        .filter(|&(_, &(x, y))| {
            let rhs = m as i128 * x as i128 + c as i128;
            if inclusive {
                y as i128 <= rhs
            } else {
                (y as i128) < rhs
            }
        })
        .map(|(i, _)| i as u64)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[2048, 4096] } else { &[8192, 16384, 32768] };
    let trace_len = if smoke { 1200 } else { 16000 };
    let queries_per_n = 16usize;
    let b = PAGE / 20;
    println!(
        "# EXP-LIVE: LSM-style live tier vs logarithmic-method bound, page={PAGE}B, \
         cache=0, delta cap={DELTA_CAP}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let cfg = Hs2dConfig::default();
    let mut report = BenchReport::new("exp_live", smoke);
    let mut ingest_rows = Vec::new();
    let mut query_rows = Vec::new();

    for &n in sizes {
        let pts = points2(Dist2::Uniform, n, 1 << 29, n as u64);

        // Ingest one by one; flushes and level merges happen inline.
        let mut live = LiveIndex::new(DeviceConfig::new(PAGE, 0), cfg, Some(DELTA_CAP));
        let t0 = Instant::now();
        for (i, &(x, y)) in pts.iter().enumerate() {
            live.insert(x, y, i as u64).unwrap();
        }
        let ingest_secs = t0.elapsed().as_secs_f64();
        let st = live.device().stats();
        let total_ios = st.reads + st.writes;
        let merges = live.merge_epoch();
        let parts = live.core().num_parts();

        // Monolithic reference build: the per-record unit cost the
        // amortized bound is phrased in.
        let dev = Device::new(DeviceConfig::new(PAGE, 0));
        let _fixed = HalfspaceRS2::build(&dev, &pts, cfg);
        let build_ios = dev.stats().reads + dev.stats().writes;

        let levels = level_bound(n, DELTA_CAP);
        let bound = levels as f64 * build_ios as f64;
        let ratio = total_ios as f64 / bound;
        assert!(
            ratio <= 3.0,
            "n={n}: ingest cost {total_ios} IOs blows the logarithmic-method shape \
             (levels={levels}, static build={build_ios} IOs, ratio={ratio:.2})"
        );
        assert!(
            parts as u64 <= levels + 1,
            "n={n}: {parts} parts exceeds the O(log n) level bound {levels}+1"
        );

        report
            .cell(format!("ingest/{n}"))
            .metric("read_ios", st.reads as f64)
            .metric("write_ios", st.writes as f64)
            .metric("ios_per_op", total_ios as f64 / n as f64)
            .metric("bound_ratio", ratio)
            .metric("merges", merges as f64)
            .metric("parts", parts as f64)
            .report_wall(Duration::from_secs_f64(ingest_secs));
        ingest_rows.push(vec![
            format!("{n}"),
            format!("{:.1}", ingest_secs * 1e6 / n as f64),
            format!("{:.2}", total_ios as f64 / n as f64),
            format!("{merges}"),
            format!("{parts}"),
            format!("{levels}"),
            format!("{build_ios}"),
            format!("{:.2}", ratio),
        ]);

        // Fixed-selectivity query batch against the ingested index,
        // differentially pinned to a host-side scan.
        let mut q_reads = 0u64;
        let t0 = Instant::now();
        for q in 0..queries_per_n as u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b, 64, q);
            live.device().reset_stats();
            let mut got = live.query_below(m, c, false);
            q_reads += live.device().stats().reads;
            got.sort_unstable();
            assert_eq!(got, host_below(&pts, m, c, false), "n={n} q={q}");
        }
        let q_secs = t0.elapsed().as_secs_f64();
        report
            .cell(format!("query/{n}"))
            .metric("read_ios", q_reads as f64)
            .metric("queries", queries_per_n as f64)
            .metric("parts", parts as f64)
            .report_wall(Duration::from_secs_f64(q_secs));
        query_rows.push(vec![
            format!("{n}"),
            format!("{queries_per_n}"),
            format!("{b}"),
            format!("{:.1}", q_reads as f64 / queries_per_n as f64),
            format!("{:.2}", q_secs * 1e3 / queries_per_n as f64),
        ]);
    }

    print_table(
        "one-by-one ingest vs the logarithmic-method bound (ratio = total IOs / \
         (levels × static build IOs), asserted ≤ 3)",
        &["N", "µs/insert", "IOs/insert", "merges", "parts", "levels", "build IOs", "ratio"],
        &ingest_rows,
    );
    print_table(
        "post-ingest queries (answers pinned to a host-side scan)",
        &["N", "queries", "target |A|", "read IOs/query", "ms/query"],
        &query_rows,
    );

    // Interleaved trace with background merges on a fixed schedule.
    let trace = live_trace(TraceMix::default(), trace_len, 1 << 20, 8, 7);
    let mut live = LiveIndex::new(DeviceConfig::new(PAGE, 0), cfg, Some(DELTA_CAP));
    let mut model: BTreeMap<u64, (i64, i64)> = BTreeMap::new();
    let mut queries = 0u64;
    let mut checked = 0u64;
    let t0 = Instant::now();
    for (i, op) in trace.iter().enumerate() {
        if i.is_multiple_of(61) {
            live.begin_merge();
        }
        if i % 61 == 9 {
            live.commit_merge().unwrap();
        }
        match *op {
            TraceOp::Insert { x, y, tag } => {
                live.insert(x, y, tag).unwrap();
                model.insert(tag, (x, y));
            }
            TraceOp::Delete { tag } => {
                assert!(live.remove(tag).unwrap(), "op {i}: delete missed tag {tag}");
                model.remove(&tag);
            }
            TraceOp::Query { m, c, inclusive } => {
                let got = live.query_below(m, c, inclusive);
                if queries.is_multiple_of(10) {
                    let mut got = got;
                    got.sort_unstable();
                    let want: Vec<u64> = {
                        let mut w: Vec<u64> = model
                            .iter()
                            .filter(|(_, &(x, y))| {
                                let rhs = m as i128 * x as i128 + c as i128;
                                if inclusive {
                                    y as i128 <= rhs
                                } else {
                                    (y as i128) < rhs
                                }
                            })
                            .map(|(&t, _)| t)
                            .collect();
                        w.sort_unstable();
                        w
                    };
                    assert_eq!(got, want, "op {i}: trace query diverged from the model");
                    checked += 1;
                }
                queries += 1;
            }
        }
    }
    live.commit_merge().unwrap();
    let trace_secs = t0.elapsed().as_secs_f64();
    assert_eq!(live.len(), model.len());
    assert!(checked >= 10, "trace must differentially check plenty of queries");
    let st = live.device().stats();
    report
        .cell(format!("trace/{trace_len}"))
        .metric("read_ios", st.reads as f64)
        .metric("write_ios", st.writes as f64)
        .metric("merges", live.merge_epoch() as f64)
        .metric("final_live", live.len() as f64)
        .metric("parts", live.core().num_parts() as f64)
        .report_wall(Duration::from_secs_f64(trace_secs));
    print_table(
        "interleaved trace with background merges (every 10th query checked against \
         a host model)",
        &["ops", "queries", "checked", "merges", "final live", "parts", "read IOs", "ms total"],
        &[vec![
            format!("{trace_len}"),
            format!("{queries}"),
            format!("{checked}"),
            format!("{}", live.merge_epoch()),
            format!("{}", live.len()),
            format!("{}", live.core().num_parts()),
            format!("{}", st.reads),
            format!("{:.1}", trace_secs * 1e3),
        ]],
    );

    if smoke {
        report.write_default();
    }
}
