//! EXP-T1-PT — Table 1, rows "d": the linear-size partition tree answers
//! d-dimensional halfspace (and simplex) queries in O(n^{1-1/d+ε} + t) IOs.
//!
//! We report the measured log-log growth exponent of small-output query
//! IOs against the paper's 1 - 1/d, for d = 2, 3, 4, for both partitioners
//! (DESIGN.md §3.4), plus a simplex-query row (Remark (i)).

use lcrs_bench::{loglog_slope, mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::{HyperplaneD, PointD, Simplex};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree, Partitioner};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pseudo<const D: usize>(n: usize, seed: u64, range: i64) -> Vec<PointD<D>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| PointD::new(std::array::from_fn(|_| rng.gen_range(-range..=range)))).collect()
}

/// A hyperplane with ~t points strictly below.
fn plane_with_t<const D: usize>(pts: &[PointD<D>], t: usize, seed: u64) -> HyperplaneD<D> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coef = [0i64; D];
    for c in coef.iter_mut().skip(1) {
        *c = rng.gen_range(-16..=16);
    }
    let mut vals: Vec<i128> = pts
        .iter()
        .map(|p| {
            let mut s = 0i128;
            for i in 0..D - 1 {
                s += coef[i + 1] as i128 * p.c[i] as i128;
            }
            p.c[D - 1] as i128 - s
        })
        .collect();
    vals.sort_unstable();
    let a0 = if t == 0 { vals[0] - 1 } else { vals[t.min(vals.len() - 1)] };
    coef[0] = i64::try_from(a0).unwrap();
    HyperplaneD::new(coef)
}

fn run_dim<const D: usize>(partitioner: Partitioner, rows: &mut Vec<Vec<String>>) {
    let page = 4096usize;
    let mut ns = Vec::new();
    let mut qs = Vec::new();
    // The ham-sandwich partitioner falls back to kd above its cutoff
    // (DESIGN.md §3.4), so its sweep stays below it.
    let exps: &[usize] = if partitioner == Partitioner::HamSandwich {
        &[11, 12, 13, 14, 15]
    } else {
        &[12, 13, 14, 15, 16, 17]
    };
    for &e in exps {
        let n_pts = 1usize << e;
        let pts = pseudo::<D>(n_pts, e as u64, 1 << 29);
        let dev = Device::new(DeviceConfig::new(page, 0));
        let cfg = PTreeConfig { partitioner, ..Default::default() };
        let t = PartitionTree::build(&dev, &pts, cfg);
        let b = page / (8 * D + 4);
        let mut ios = Vec::new();
        for q in 0..24 {
            let h = plane_with_t(&pts, b, 900 + q);
            let (_, st) = t.query_halfspace_stats(&h, false);
            ios.push(st.ios as f64);
        }
        let blocks = n_pts.div_ceil(b);
        ns.push(blocks as f64);
        qs.push(mean(&ios));
        rows.push(vec![
            format!("{D}"),
            format!("{partitioner:?}"),
            format!("{n_pts}"),
            format!("{blocks}"),
            format!("{:.1}", mean(&ios)),
            format!("{}", t.pages()),
            format!("{:.2}", t.pages() as f64 / blocks as f64),
        ]);
    }
    rows.push(vec![
        format!("{D}"),
        format!("{partitioner:?}"),
        "exponent".into(),
        format!("paper {:.3}", 1.0 - 1.0 / D as f64),
        format!("{:.3}", loglog_slope(&ns, &qs)),
        "-".into(),
        "-".into(),
    ]);
}

fn main() {
    println!("# EXP-T1-PT: Theorem 5.2 (linear-size partition trees)");
    let mut rows = Vec::new();
    run_dim::<2>(Partitioner::KdMedian, &mut rows);
    run_dim::<2>(Partitioner::HamSandwich, &mut rows);
    run_dim::<3>(Partitioner::KdMedian, &mut rows);
    run_dim::<4>(Partitioner::KdMedian, &mut rows);
    print_table(
        "query IOs vs n, small output (paper: O(n^{1-1/d+ε} + t), space O(n))",
        &["d", "partitioner", "N", "n", "avg IOs", "space pages", "space/n"],
        &rows,
    );

    // Simplex queries (Remark (i)).
    let pts = pseudo::<2>(1 << 15, 5, 1 << 20);
    let dev = Device::new(DeviceConfig::new(4096, 0));
    let t = PartitionTree::build(&dev, &pts, PTreeConfig::default());
    let mut rows = Vec::new();
    for (label, half) in [("small", 1 << 16), ("medium", 1 << 18), ("large", 1 << 20)] {
        let tri: Simplex<2> = Simplex::new(vec![([-1, 0], half), ([0, -1], half), ([1, 1], half)]);
        let (res, st) = t.query_simplex_stats(&tri);
        rows.push(vec![
            label.into(),
            format!("{}", res.len()),
            format!("{}", st.ios),
            format!("{}", st.nodes_visited),
        ]);
    }
    print_table(
        "simplex (triangle) queries on the d=2 tree (Remark (i))",
        &["triangle", "reported", "IOs", "nodes"],
        &rows,
    );
}
