//! EXP-SHARD — space-partitioned scatter-gather serving (DESIGN.md §11):
//! the mixed oracle workload and the zipf/sweep halfplane batches over
//! `ShardedIndexSet` tiers at S ∈ {1, 2, 4, 8}, measuring read IOs and
//! the shards-touched (fan-out) histogram as S grows. Differential gates
//! asserted on every run:
//!
//! * sharded answers are bit-identical to the unsharded `IndexSet` at
//!   every S, and per-shard IO deltas sum exactly to the aggregate;
//! * S=1 reproduces the unsharded planner's read-IO total exactly
//!   (identity routing — one shard IS the unsharded set);
//! * on the zipf and sweep halfplane workloads the mean shards-touched
//!   at S=8 stays strictly below 8 — geometric routing actually prunes.
//!
//! Run with `--smoke` for the CI-sized variant (which also emits
//! `BENCH_exp_shard.json` for the read-IO regression gate).

use std::time::{Duration, Instant};

use lcrs_bench::{
    canon_answer, full_index_set, mixed_oracle, mixed_probes, print_table, BenchReport,
};
use lcrs_engine::{Query, ShardConfig, ShardedIndexSet, ShardedReport};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_workloads::{halfplane_batch, points2, points3, BatchShape, Dist2, Dist3};

const PAGE: usize = 1024;
const CACHE_PAGES: usize = 32;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const HP_SLOPE: i64 = 40;

/// Fan-out histogram of one run: `count[f]` queries touched `f` shards.
fn fanout_histogram(report: &ShardedReport, s: usize) -> Vec<usize> {
    let mut hist = vec![0usize; s + 1];
    for &f in &report.fanout {
        hist[f] += 1;
    }
    hist
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, n3, q_hp, q_hs, q_knn, batch_len) =
        if smoke { (3072, 1536, 300, 120, 80, 192) } else { (12288, 4096, 1200, 480, 320, 768) };
    println!(
        "# EXP-SHARD: scatter-gather over geometry-aware shards, S in {SHARD_COUNTS:?}, \
         page={PAGE}B, cache={CACHE_PAGES} pages/shard-device{}",
        if smoke { " (smoke)" } else { "" }
    );

    let pts2 = points2(Dist2::Clustered, n2, 1000, 61);
    let pts3 = points3(Dist3::Uniform, n3, 1 << 16, 62);
    let probes = mixed_probes(&pts2, &pts3, 81);

    // The unsharded reference: the same eleven-structure planner fixture.
    let dev2 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let dev3 = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let mut unsharded = full_index_set(&dev2, &dev3, &pts2, &pts3);
    unsharded.calibrate(&probes);
    dev2.freeze();
    dev3.freeze();

    // The sharded tiers, one per S, each shard its own devices + planner.
    let cfg = DeviceConfig::new(PAGE, CACHE_PAGES);
    let t = Instant::now();
    let tiers: Vec<ShardedIndexSet> = SHARD_COUNTS
        .iter()
        .map(|&s| {
            let mut sharded = ShardedIndexSet::build(
                &pts2,
                &pts3,
                &ShardConfig { shards: s, device: cfg },
                full_index_set,
            );
            sharded.calibrate(&probes);
            sharded.freeze();
            sharded
        })
        .collect();
    println!("\nBuilt + calibrated 4 tiers in {:.1} s", t.elapsed().as_secs_f64());

    // The workloads: the mixed oracle plus the zipf/sweep halfplane
    // batches (the same constructions the batch/parallel experiments use).
    let mixed = mixed_oracle(&pts2, &pts3, (q_hp, q_hs, q_knn), 71);
    let to_queries = |batch: Vec<(i64, i64)>| -> Vec<Query> {
        batch.into_iter().map(|(m, c)| Query::Halfplane { m, c, inclusive: false }).collect()
    };
    let zipf = to_queries(halfplane_batch(
        &pts2,
        BatchShape::ZipfRepeat { distinct: 12, s: 1.1 },
        batch_len,
        HP_SLOPE,
        55,
    ));
    let sweep =
        to_queries(halfplane_batch(&pts2, BatchShape::SortedSweep, batch_len, HP_SLOPE, 56));

    let mut report = BenchReport::new("exp_shard", smoke);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (workload, queries) in [("mixed", &mixed), ("zipf", &zipf), ("sweep", &sweep)] {
        // The unsharded reference run for this workload: the answer oracle
        // for every S, and the exact IO target for S=1.
        let reference = unsharded.execute(queries, true);
        let reference_answers = reference.answers.as_ref().unwrap();
        for (ti, &s) in SHARD_COUNTS.iter().enumerate() {
            let sharded = &tiers[ti];
            let t = Instant::now();
            let run = sharded.execute_parallel(queries, 1, true);
            let wall = t.elapsed().as_secs_f64();
            assert_eq!(run.attributed_total(), run.total, "per-query deltas must sum exactly");
            assert_eq!(run.unsupported(), 0);

            // Differential gate: sharded answers == unsharded answers.
            let answers = run.answers.as_ref().unwrap();
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(
                    canon_answer(q, answers[qi].clone()),
                    canon_answer(q, reference_answers[qi].clone()),
                    "{workload} S={s} q{qi} {q:?}"
                );
            }
            if s == 1 {
                assert_eq!(
                    run.total, reference.total,
                    "{workload}: S=1 must reproduce the unsharded IO total exactly"
                );
            }
            if workload != "mixed" && s == 8 {
                assert!(
                    run.mean_fanout() < 8.0,
                    "{workload}: routing must prune at S=8, mean fan-out {}",
                    run.mean_fanout()
                );
            }

            let hist = fanout_histogram(&run, s);
            rows.push(vec![
                format!("{workload}/S{s}"),
                format!("{}", queries.len()),
                format!("{}", run.reads()),
                format!("{:.2}", run.mean_fanout()),
                format!("{hist:?}"),
                format!("{:.1}", wall * 1e3),
            ]);
            report
                .cell(format!("{workload}/S{s}"))
                .metric("queries", queries.len() as f64)
                .metric("read_ios", run.reads() as f64)
                .metric("mean_fanout", run.mean_fanout())
                .metric("wall_s", wall)
                .report_wall(Duration::from_secs_f64(wall));
        }
    }
    print_table(
        "Scatter-gather vs shard count (answers pinned identical to unsharded)",
        &["workload/S", "queries", "reads", "mean_fanout", "fanout_histogram", "wall_ms"],
        &rows,
    );

    println!(
        "\nGates: answers bit-identical to the unsharded planner on all workloads and every S; \
         S=1 IO == unsharded on every workload; zipf/sweep mean fan-out at S=8 < 8; \
         per-shard deltas sum exactly."
    );
    if smoke {
        report.write_default();
    }
}
