//! EXP-PARALLEL — the query engine's sharded mode (DESIGN.md §8): total
//! read IOs and wall-clock time of a query batch executed through the
//! sequential [`BatchExecutor`] versus the [`ParallelExecutor`] at 1, 2, 4,
//! and 8 workers, per structure, distribution, and batch shape.
//!
//! The device is frozen after construction, so workers read the page store
//! lock-free; each worker runs a contiguous, locality-ordered shard against
//! its own forked device-handle scope (own warm LRU). Per-cell invariants
//! asserted on every run: per-worker IO deltas sum exactly to the
//! aggregate, and per-query reported counts match the sequential executor
//! (full bit-identity of answers is pinned by `tests/engine_parallel.rs`).
//!
//! Run with `--smoke` for the CI-sized variant (assertions only — wall
//! clock on a loaded CI box is noise).

use std::time::{Duration, Instant};

use lcrs_baselines::{ExternalKdTree, ExternalScan};
use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{BatchExecutor, ParallelExecutor, Query, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig, IoDelta};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3};
use lcrs_halfspace::KnnStructure;
use lcrs_workloads::{
    halfplane_batch, halfspace3_batch, knn_batch, points2, points3, BatchShape, Dist2, Dist3,
};

const PAGE: usize = 4096;
const CACHE_PAGES: usize = 1024;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Row {
    structure: &'static str,
    dist: String,
    shape: &'static str,
    n: usize,
    queries: usize,
    seq_reads: u64,
    seq_ms: f64,
    wall_ms: Vec<f64>, // parallel to WORKER_COUNTS
    speedup4: f64,
}

fn shape_name(s: &BatchShape) -> &'static str {
    match s {
        BatchShape::ZipfRepeat { .. } => "zipf",
        BatchShape::SortedSweep => "sweep",
    }
}

/// Run one (structure, batch) cell: the sequential batched baseline, then
/// the parallel executor at each worker count, with the report invariants
/// asserted every time.
fn run_cell(
    index: &dyn RangeIndex,
    queries: &[Query],
    n: usize,
    dist: String,
    shape: &BatchShape,
) -> Row {
    // Untimed warmup so first-touch effects (page faults, allocator growth)
    // don't masquerade as speedup or slowdown in the timed runs.
    let _ = BatchExecutor::new(index).run_batched(queries);
    let t0 = Instant::now();
    let sequential = BatchExecutor::new(index).run_batched(queries);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        sequential.attributed_total(),
        sequential.total,
        "{}: per-query deltas must sum to the batch total",
        index.name()
    );
    let mut wall_ms = Vec::with_capacity(WORKER_COUNTS.len());
    for &workers in &WORKER_COUNTS {
        let t = Instant::now();
        let report = ParallelExecutor::new(index, workers).run(queries);
        wall_ms.push(t.elapsed().as_secs_f64() * 1e3);
        let worker_sum: IoDelta = report.per_worker.iter().map(|w| w.io).sum();
        assert_eq!(
            worker_sum,
            report.total,
            "{}/{workers}: per-worker deltas must sum to the aggregate",
            index.name()
        );
        for (o, s) in report.outcomes.iter().zip(&sequential.outcomes) {
            assert_eq!(
                (o.query, o.reported),
                (s.query, s.reported),
                "{}/{workers}: parallel outcomes must match the sequential executor",
                index.name()
            );
        }
        if workers == 1 {
            assert_eq!(
                report.total,
                sequential.total,
                "{}: one worker must cost exactly the sequential batch",
                index.name()
            );
        }
    }
    let speedup4 = seq_ms / wall_ms[2].max(1e-9);
    Row {
        structure: index.name(),
        dist,
        shape: shape_name(shape),
        n,
        queries: queries.len(),
        seq_reads: sequential.reads(),
        seq_ms,
        wall_ms,
        speedup4,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, n3, batch_len) = if smoke { (4096, 1024, 200) } else { (100_000, 16_384, 1000) };
    let shapes = [BatchShape::ZipfRepeat { distinct: 16, s: 1.1 }, BatchShape::SortedSweep];
    println!(
        "# EXP-PARALLEL: sequential vs sharded wall-clock and reads, page={PAGE}B, \
         cache={CACHE_PAGES} pages/worker, {batch_len}-query batches, workers {WORKER_COUNTS:?}{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    // 2D: the optimal structure plus the two baselines with the fastest
    // builds (the 100k-point wall-clock cells of the acceptance bar).
    for dist in [Dist2::Uniform, Dist2::Clustered] {
        let pts = points2(dist, n2, 1 << 29, 42);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let hs2d = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let kd = ExternalKdTree::build(&dev, &pts);
        let scan = ExternalScan::build(&dev, &pts);
        dev.freeze();
        let indexes: Vec<&dyn RangeIndex> = vec![&hs2d, &kd, &scan];
        for shape in shapes {
            let qs: Vec<Query> = halfplane_batch(&pts, shape, batch_len, 48, 7)
                .into_iter()
                .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
                .collect();
            for idx in &indexes {
                rows.push(run_cell(*idx, &qs, n2, format!("{dist:?}"), &shape));
            }
        }
    }

    // 3D: the a=2/3 trade-off tree.
    for dist in [Dist3::Uniform, Dist3::Slab] {
        let pts = points3(dist, n3, 1 << 18, 43);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let hybrid = HybridTree3::build(&dev, &pts, HybridConfig::default());
        dev.freeze();
        for shape in shapes {
            let qs: Vec<Query> = halfspace3_batch(&pts, shape, batch_len, 32, 8)
                .into_iter()
                .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
                .collect();
            rows.push(run_cell(&hybrid, &qs, n3, format!("{dist:?}"), &shape));
        }
    }

    // k-NN (centers inside the lift coordinate budget).
    {
        let pts = points2(Dist2::Uniform, n3, 1000, 44);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        dev.freeze();
        for shape in shapes {
            let qs: Vec<Query> = knn_batch(&pts, shape, batch_len, 16, 9)
                .into_iter()
                .map(|(x, y, k)| Query::Knn { x, y, k })
                .collect();
            rows.push(run_cell(&knn, &qs, n3, "Uniform".to_string(), &shape));
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut cells = vec![
                r.structure.to_string(),
                r.dist.clone(),
                r.shape.to_string(),
                format!("{}", r.n),
                format!("{}", r.queries),
                format!("{}", r.seq_reads),
                format!("{:.1}", r.seq_ms),
            ];
            cells.extend(r.wall_ms.iter().map(|w| format!("{w:.1}")));
            cells.push(format!("{:.2}x", r.speedup4));
            cells
        })
        .collect();
    print_table(
        "Sequential vs sharded execution (wall-clock ms per whole batch)",
        &[
            "structure",
            "dist",
            "shape",
            "n",
            "queries",
            "reads",
            "seq",
            "w1",
            "w2",
            "w4",
            "w8",
            "spd@4",
        ],
        &table,
    );

    let best = rows
        .iter()
        .max_by(|a, b| a.speedup4.partial_cmp(&b.speedup4).unwrap())
        .expect("at least one cell");
    println!(
        "\nAll {} cells: per-worker deltas sum exactly; outcomes match the sequential \
         executor. Best 4-worker speedup: {:.2}x ({} {} {} n={}).",
        rows.len(),
        best.speedup4,
        best.structure,
        best.dist,
        best.shape,
        best.n
    );
    // Wall-clock speedup needs hardware parallelism: only hold the bench to
    // the >1.5x bar when the machine can actually run 4 workers at once.
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if !smoke && cores >= 4 {
        assert!(
            rows.iter().any(|r| r.n >= 100_000 && r.speedup4 > 1.5),
            "expected a >1.5x 4-worker speedup on at least one 100k-point workload"
        );
    } else if !smoke {
        println!(
            "note: only {cores} core(s) available — the >1.5x speedup gate needs >=4 \
             and was skipped; IO/merge invariants were still asserted on every cell."
        );
    }
    if smoke {
        let mut report = BenchReport::new("exp_parallel", smoke);
        for r in &rows {
            let cell = report.cell(format!("{}/{}/{}", r.structure, r.dist, r.shape));
            cell.metric("queries", r.queries as f64)
                .metric("read_ios", r.seq_reads as f64)
                .metric("seq_wall_s", r.seq_ms / 1e3)
                .report_wall(Duration::from_secs_f64(r.seq_ms / 1e3));
            for (w, ms) in WORKER_COUNTS.iter().zip(&r.wall_ms) {
                cell.metric(&format!("w{w}_wall_s"), ms / 1e3);
            }
        }
        report.write_default();
    }
}
