//! EXP-BATCHED — the query engine's batch mode (DESIGN.md §7): total read
//! IOs of a query batch executed one-at-a-time cold versus through the
//! [`BatchExecutor`] (locality-ordered, shared warm LRU), per structure and
//! per batch shape — all six halfspace structures (hs2d, hs3d, knn, ptree,
//! and both Section 6 trade-off trees) plus the three baselines.
//!
//! The paper's bounds are per-query; this experiment measures what they
//! leave on the table under production-style traffic: repeat-heavy
//! (Zipf-popularity) and sorted-sweep batches both reuse pages heavily, so
//! the batched cost must come in strictly below the cold cost on every
//! structure, while answers and per-query attribution stay exact.
//!
//! Run with `--smoke` for the CI-sized variant.

use lcrs_baselines::{ExternalKdTree, ExternalScan, StrRTree};
use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{BatchExecutor, Query, RangeIndex};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs_halfspace::KnnStructure;
use lcrs_workloads::{
    halfplane_batch, halfspace3_batch, knn_batch, points2, points3, BatchShape, Dist2, Dist3,
};
use std::time::{Duration, Instant};

const PAGE: usize = 4096;
const CACHE_PAGES: usize = 1024;

struct Row {
    structure: &'static str,
    dist: String,
    shape: &'static str,
    queries: usize,
    cold_reads: u64,
    batched_reads: u64,
    batched_hits: u64,
    wall: Duration,
}

fn shape_name(s: &BatchShape) -> &'static str {
    match s {
        BatchShape::ZipfRepeat { .. } => "zipf",
        BatchShape::SortedSweep => "sweep",
    }
}

/// Run one (structure, batch) cell: cold then batched, with the attribution
/// and savings invariants asserted. Returns cold reads, batched reads,
/// batched cache hits, and the batched run's wall-clock.
fn run_cell(index: &dyn RangeIndex, queries: &[Query]) -> (u64, u64, u64, Duration) {
    let ex = BatchExecutor::new(index);
    let cold = ex.run_cold(queries);
    let t0 = Instant::now();
    let batched = ex.run_batched(queries);
    let wall = t0.elapsed();
    for report in [&cold, &batched] {
        assert_eq!(
            report.attributed_total(),
            report.total,
            "{}: per-query deltas must sum to the batch total",
            index.name()
        );
    }
    assert!(
        batched.reads() < cold.reads(),
        "{}: batched {} reads must beat cold {}",
        index.name(),
        batched.reads(),
        cold.reads()
    );
    (cold.reads(), batched.reads(), batched.total.cache_hits, wall)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, n3, batch_len) = if smoke { (4096, 1024, 200) } else { (32768, 8192, 1000) };
    let shapes = [BatchShape::ZipfRepeat { distinct: 16, s: 1.1 }, BatchShape::SortedSweep];
    println!(
        "# EXP-BATCHED: cold vs batched total read IOs, page={PAGE}B, \
         cache={CACHE_PAGES} pages, {batch_len}-query batches{}",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();

    // 2D: the optimal structure vs all three baselines.
    for dist in [Dist2::Uniform, Dist2::Clustered] {
        let pts = points2(dist, n2, 1 << 29, 42);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let hs2d = HalfspaceRS2::build(&dev, &pts, Hs2dConfig::default());
        let scan = ExternalScan::build(&dev, &pts);
        let kd = ExternalKdTree::build(&dev, &pts);
        let rt = StrRTree::build(&dev, &pts);
        let pd: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
        let pt = PartitionTree::<2>::build(&dev, &pd, PTreeConfig::default());
        let indexes: Vec<&dyn RangeIndex> = vec![&hs2d, &pt, &kd, &rt, &scan];
        for shape in shapes {
            let qs: Vec<Query> = halfplane_batch(&pts, shape, batch_len, 48, 7)
                .into_iter()
                .map(|(m, c)| Query::Halfplane { m, c, inclusive: false })
                .collect();
            for idx in &indexes {
                let (cold, batched, hits, wall) = run_cell(*idx, &qs);
                rows.push(Row {
                    structure: idx.name(),
                    dist: format!("{dist:?}"),
                    shape: shape_name(&shape),
                    queries: qs.len(),
                    cold_reads: cold,
                    batched_reads: batched,
                    batched_hits: hits,
                    wall,
                });
            }
        }
    }

    // 3D: both Section 6 trade-off structures.
    for dist in [Dist3::Uniform, Dist3::Slab] {
        let pts = points3(dist, n3, 1 << 18, 43);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let hs3d = HalfspaceRS3::build(&dev, &pts, Hs3dConfig::default());
        let hybrid = HybridTree3::build(&dev, &pts, HybridConfig::default());
        let shallow = ShallowTree3::build(&dev, &pts, ShallowConfig::default());
        let indexes: Vec<&dyn RangeIndex> = vec![&hs3d, &hybrid, &shallow];
        for shape in shapes {
            let qs: Vec<Query> = halfspace3_batch(&pts, shape, batch_len, 32, 8)
                .into_iter()
                .map(|(u, v, w)| Query::Halfspace { u, v, w, inclusive: false })
                .collect();
            for idx in &indexes {
                let (cold, batched, hits, wall) = run_cell(*idx, &qs);
                rows.push(Row {
                    structure: idx.name(),
                    dist: format!("{dist:?}"),
                    shape: shape_name(&shape),
                    queries: qs.len(),
                    cold_reads: cold,
                    batched_reads: batched,
                    batched_hits: hits,
                    wall,
                });
            }
        }
    }

    // k-NN: the Theorem 4.3 structure (centers stay inside the lift
    // coordinate budget, so the point range is +-1000).
    for dist in [Dist2::Uniform, Dist2::Clustered] {
        let pts = points2(dist, n3, 1000, 44);
        let dev = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        for shape in shapes {
            let qs: Vec<Query> = knn_batch(&pts, shape, batch_len, 16, 9)
                .into_iter()
                .map(|(x, y, k)| Query::Knn { x, y, k })
                .collect();
            let (cold, batched, hits, wall) = run_cell(&knn, &qs);
            rows.push(Row {
                structure: RangeIndex::name(&knn),
                dist: format!("{dist:?}"),
                shape: shape_name(&shape),
                queries: qs.len(),
                cold_reads: cold,
                batched_reads: batched,
                batched_hits: hits,
                wall,
            });
        }
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.structure.to_string(),
                r.dist.clone(),
                r.shape.to_string(),
                format!("{}", r.queries),
                format!("{}", r.cold_reads),
                format!("{}", r.batched_reads),
                format!("{}", r.batched_hits),
                format!("{:.1}%", 100.0 * (1.0 - r.batched_reads as f64 / r.cold_reads as f64)),
            ]
        })
        .collect();
    print_table(
        "Cold vs batched total read IOs per structure and batch shape",
        &["structure", "dist", "shape", "queries", "cold", "batched", "hits", "saved"],
        &table,
    );
    println!(
        "\nAll {} cells: per-query attribution sums to the batch total; \
         batched reads strictly below cold.",
        rows.len()
    );
    if smoke {
        let mut report = BenchReport::new("exp_batched", smoke);
        for r in &rows {
            report
                .cell(format!("{}/{}/{}", r.structure, r.dist, r.shape))
                .metric("queries", r.queries as f64)
                .metric("read_ios", r.batched_reads as f64)
                .metric("cold_reads", r.cold_reads as f64)
                .metric("cache_hits", r.batched_hits as f64)
                .report_wall(r.wall);
        }
        report.write_default();
    }
}
