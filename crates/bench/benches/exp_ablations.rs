//! EXP-ABL — design-choice ablations called out in DESIGN.md:
//! (i) the 3k cluster factor of Lemma 3.2 vs 2k/4k;
//! (ii) the paper's three independent 3D copies vs one (tail IOs);
//! (iii) β = B·log_B n vs alternatives;
//! (iv) partition-tree fanout.

use lcrs_bench::{mean, percentile, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_workloads::{
    halfplane_with_selectivity, halfspace3_with_selectivity, points2, points3, Dist2, Dist3,
};

fn main() {
    let page = 4096usize;
    println!("# EXP-ABL: ablations");
    let b2 = page / 20;

    // (i) cluster factor.
    let n_pts = 1usize << 15;
    let pts = points2(Dist2::Uniform, n_pts, 1 << 29, 1);
    let mut rows = Vec::new();
    for factor in [2usize, 3, 4] {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(
            &dev,
            &pts,
            Hs2dConfig { cluster_factor: factor, ..Default::default() },
        );
        let mut ios = Vec::new();
        for q in 0..12u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b2, 64, q);
            ios.push(hs.query_below_stats(m, c, false).1.ios as f64);
        }
        rows.push(vec![
            format!("{factor}k"),
            format!("{}", hs.pages()),
            format!("{}", hs.num_clusterings()),
            format!("{:.1}", mean(&ios)),
        ]);
    }
    print_table(
        "(i) cluster size factor (paper: 3k)",
        &["factor", "space pages", "m", "avg IOs (T=B)"],
        &rows,
    );

    // (ii) copies: 1 vs 3.
    let b3 = page / 28;
    let pts3v = points3(Dist3::Uniform, 1 << 15, 1 << 19, 2);
    let mut rows = Vec::new();
    for copies in [1usize, 3] {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS3::build(&dev, &pts3v, Hs3dConfig { copies, ..Default::default() });
        let mut ios = Vec::new();
        let mut tries = Vec::new();
        for q in 0..30u64 {
            let (u, v, w) = halfspace3_with_selectivity(&pts3v, b3, 32, q);
            let st = hs.query_below_stats(u, v, w, false).1;
            ios.push(st.ios as f64);
            tries.push(st.try_calls as f64);
        }
        rows.push(vec![
            format!("{copies}"),
            format!("{}", hs.pages()),
            format!("{:.1}", mean(&ios)),
            format!("{:.0}", percentile(&ios, 95.0)),
            format!("{:.2}", mean(&tries)),
        ]);
    }
    print_table(
        "(ii) independent copies (paper: 3 — bounds the failure tail)",
        &["copies", "space pages", "avg IOs", "p95 IOs", "avg TryLowestPlanes calls"],
        &rows,
    );

    // (iii) beta.
    let mut rows = Vec::new();
    let blocks = n_pts.div_ceil(b2);
    let logb = (blocks as f64).ln() / (b2 as f64).ln();
    let beta_paper = (b2 as f64 * logb.max(1.0)).ceil() as usize;
    for (label, beta) in
        [("B", b2), ("B·log_B n (paper)", beta_paper), ("2·B·log_B n", 2 * beta_paper)]
    {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let hs = HalfspaceRS2::build(
            &dev,
            &pts,
            Hs2dConfig { beta_override: beta, ..Default::default() },
        );
        let mut ios = Vec::new();
        for q in 0..12u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b2, 64, 100 + q);
            ios.push(hs.query_below_stats(m, c, false).1.ios as f64);
        }
        rows.push(vec![
            label.into(),
            format!("{beta}"),
            format!("{}", hs.num_clusterings()),
            format!("{}", hs.pages()),
            format!("{:.1}", mean(&ios)),
        ]);
    }
    print_table(
        "(iii) β choice (paper: B·log_B n)",
        &["β", "value", "m", "space pages", "avg IOs"],
        &rows,
    );

    // (iv) partition-tree fanout.
    let ptpts: Vec<PointD<2>> = pts.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    let mut rows = Vec::new();
    for fanout in [4usize, 16, 64, 256] {
        let dev = Device::new(DeviceConfig::new(page, 0));
        let t = PartitionTree::build(&dev, &ptpts, PTreeConfig { fanout, ..Default::default() });
        let mut ios = Vec::new();
        for q in 0..10u64 {
            let (m, c) = halfplane_with_selectivity(&pts, b2, 16, 200 + q);
            let h = lcrs_geom::point::HyperplaneD::new([c, m]);
            ios.push(t.query_halfspace_stats(&h, false).1.ios as f64);
        }
        rows.push(vec![
            format!("{fanout}"),
            format!("{}", t.num_nodes()),
            format!("{}", t.pages()),
            format!("{:.1}", mean(&ios)),
        ]);
    }
    print_table(
        "(iv) partition-tree fanout r (paper: min(cB, 2n_v))",
        &["fanout", "nodes", "space pages", "avg IOs"],
        &rows,
    );
}
