//! EXP-KNN — Theorem 4.3: k nearest neighbors in O(log_B n + k/B) expected
//! IOs via the lifting of Section 4.1.

use lcrs_bench::{mean, print_table};
use lcrs_extmem::{Device, DeviceConfig};
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::knn::{KnnStructure, MAX_KNN_COORD};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pseudo(n: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
            )
        })
        .collect()
}

fn main() {
    let page = 4096usize;
    let b = page / 28;
    println!("# EXP-KNN: Theorem 4.3 (k-NN by lifting), page={page}B");

    // IOs vs k at fixed n.
    let n_pts = 1usize << 15;
    let pts = pseudo(n_pts, 1);
    let dev = Device::new(DeviceConfig::new(page, 0));
    let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let mut rows = Vec::new();
    for k in [1usize, 8, 64, b, 4 * b, 16 * b] {
        let mut ios = Vec::new();
        for _ in 0..10 {
            let (x, y) = (
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
            );
            let (res, st) = knn.k_nearest_stats(x, y, k);
            assert_eq!(res.len(), k.min(n_pts));
            ios.push(st.ios as f64);
        }
        rows.push(vec![format!("{k}"), format!("{}", k.div_ceil(b)), format!("{:.1}", mean(&ios))]);
    }
    print_table(
        &format!("query IOs vs k at N = {n_pts} (paper: O(log_B n + k/B) expected)"),
        &["k", "k/B", "avg IOs"],
        &rows,
    );

    // IOs vs n at fixed k.
    let mut rows = Vec::new();
    for e in [12usize, 13, 14, 15, 16] {
        let n_pts = 1usize << e;
        let pts = pseudo(n_pts, e as u64);
        let dev = Device::new(DeviceConfig::new(page, 0));
        let knn = KnnStructure::build(&dev, &pts, Hs3dConfig::default());
        let mut ios = Vec::new();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let (x, y) = (
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
                rng.gen_range(-MAX_KNN_COORD..=MAX_KNN_COORD),
            );
            ios.push(knn.k_nearest_stats(x, y, 32).1.ios as f64);
        }
        rows.push(vec![
            format!("{n_pts}"),
            format!("{:.1}", mean(&ios)),
            format!("{}", knn.pages()),
        ]);
    }
    print_table(
        "query IOs vs n at fixed k = 32 (near-flat: the log_B n term)",
        &["N", "avg IOs", "space pages"],
        &rows,
    );
}
