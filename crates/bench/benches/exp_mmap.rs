//! EXP-MMAP — wall-clock as a first-class number (DESIGN.md §13): build an
//! index, freeze it to a snapshot, reopen it through both storage backends
//! — pread (copy into a pooled buffer per access) and mmap (checksums
//! validated once at open, every later read a pointer offset) — and put
//! wall ns/query next to the model read-IO count for each.
//!
//! Invariants asserted on every cell: answers and model read-IO totals are
//! bit-identical across the in-memory original, the pread reopen, and the
//! mmap reopen — the backend moves bytes, never the cost model. Traffic
//! covers the repeat-heavy (zipf), sorted-sweep, and sequential page-sweep
//! shapes (the last is the prefetch showcase: nested-prefix answer sets
//! walk the pages front to back), plus a planner-driven mixed cell where
//! [`IndexSet::execute_plan`] issues its per-group `PrefetchHint`s.
//!
//! The wall gate — mmap total ≤ pread total over best-of-3 runs — is
//! enforced only when `available_parallelism() ≥ 2`; on a 1-core CI
//! container wall numbers are informational and only the IO/answer parity
//! asserts. Run with `--smoke` for the CI-sized variant.

use std::time::{Duration, Instant};

use lcrs_baselines::{ExternalKdTree, ExternalScan};
use lcrs_bench::{print_table, BenchReport};
use lcrs_engine::{load_index, BatchExecutor, IndexSet, Query, RangeIndex, SnapshotCatalog};
use lcrs_extmem::{
    Device, DeviceConfig, IoStats, MetaReader, MetaWriter, PageBackend, ReopenBackend, TempDir,
};
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::Hs3dConfig;
use lcrs_halfspace::KnnStructure;
use lcrs_workloads::{
    halfplane_batch, halfplane_page_sweep, knn_batch, points2, BatchShape, Dist2,
};

const PAGE: usize = 4096;
const CACHE_PAGES: usize = 512;
/// Best-of-N wall timing per backend: the minimum of several runs filters
/// scheduler noise without averaging away the real difference.
const TIMING_RUNS: usize = 3;

struct Row {
    cell: String,
    queries: usize,
    reads: u64,
    pread_wall: Duration,
    mmap_wall: Duration,
}

fn ns_per_query(wall: Duration, queries: usize) -> f64 {
    wall.as_nanos() as f64 / queries as f64
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> Duration {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .min()
        .expect("runs > 0")
}

/// One standalone cell: persist `index`, reopen through both backends,
/// pin answer/IO parity against the in-memory original, time both.
fn run_cell(
    dir: &TempDir,
    dev: &Device,
    index: &dyn RangeIndex,
    queries: &[Query],
    cell: String,
) -> Row {
    let mem = BatchExecutor::new(index).keep_answers(true).run_batched(queries);

    let path = dir.file(&format!("{}.pages", cell.replace('/', "-")));
    dev.freeze_to_path(&path).expect("freeze_to_path");
    let mut w = MetaWriter::new();
    index.save_meta(&mut w);
    let meta = w.into_bytes();

    let mut walls = [Duration::ZERO; 2];
    for (i, backend) in [ReopenBackend::Pread, ReopenBackend::Mmap].into_iter().enumerate() {
        let re_dev =
            Device::open_snapshot_as(&path, CACHE_PAGES, backend).expect("open_snapshot_as");
        match backend {
            ReopenBackend::Pread => assert_eq!(re_dev.backend(), PageBackend::File, "{cell}"),
            #[cfg(unix)]
            ReopenBackend::Mmap => assert_eq!(re_dev.backend(), PageBackend::Mmap, "{cell}"),
            #[cfg(not(unix))]
            ReopenBackend::Mmap => {}
        }
        assert_eq!(re_dev.stats(), IoStats::default(), "{cell}: cold reopen starts zeroed");
        let mut r = MetaReader::from_bytes(meta.clone()).expect("metadata envelope");
        let re = load_index(index.name(), &re_dev, &mut r).expect("load_index");
        let rep = BatchExecutor::new(&*re).keep_answers(true).run_batched(queries);
        assert_eq!(
            rep.answers, mem.answers,
            "{cell}/{backend:?}: answers must be bit-identical to the in-memory original"
        );
        assert_eq!(rep.total, mem.total, "{cell}/{backend:?}: IO totals must be identical");
        walls[i] = best_of(TIMING_RUNS, || BatchExecutor::new(&*re).run_batched(queries));
    }

    Row {
        cell,
        queries: queries.len(),
        reads: mem.total.reads,
        pread_wall: walls[0],
        mmap_wall: walls[1],
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n2, nk, batch_len) = if smoke { (3000, 800, 150) } else { (40_000, 8_192, 600) };
    let dir = TempDir::new("lcrs-exp-mmap");
    println!(
        "# EXP-MMAP: pread vs mmap reopen, wall ns/query next to model read IOs, \
         page={PAGE}B, cache={CACHE_PAGES} pages, best-of-{TIMING_RUNS} timing{}",
        if smoke { " (smoke)" } else { "" }
    );

    let pts = points2(Dist2::Uniform, n2, 1 << 29, 521);
    let to_hp = |batch: Vec<(i64, i64)>| -> Vec<Query> {
        batch.into_iter().map(|(m, c)| Query::Halfplane { m, c, inclusive: false }).collect()
    };
    let zipf = to_hp(halfplane_batch(
        &pts,
        BatchShape::ZipfRepeat { distinct: 16, s: 1.1 },
        batch_len,
        48,
        3,
    ));
    let sweep = to_hp(halfplane_batch(&pts, BatchShape::SortedSweep, batch_len, 48, 4));
    // The prefetch showcase: nested-prefix answer sets advancing a fixed
    // record stride per query — a rank-ordered layout reads its pages
    // strictly front to back across the batch.
    let pagesweep = to_hp(halfplane_page_sweep(&pts, batch_len, n2 / batch_len, 48, 5));

    let dev_hs = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let hs2d = HalfspaceRS2::build(&dev_hs, &pts, Hs2dConfig::default());
    let dev_scan = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let scan = ExternalScan::build(&dev_scan, &pts);
    let dev_kd = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let kd = ExternalKdTree::build(&dev_kd, &pts);

    let kpts = points2(Dist2::Clustered, nk, 1000, 523);
    let dev_knn = Device::new(DeviceConfig::new(PAGE, CACHE_PAGES));
    let knn = KnnStructure::build(&dev_knn, &kpts, Hs3dConfig::default());
    let kqueries: Vec<Query> = knn_batch(&kpts, BatchShape::SortedSweep, batch_len, 16, 6)
        .into_iter()
        .map(|(x, y, k)| Query::Knn { x, y, k })
        .collect();

    let mut rows = vec![
        run_cell(&dir, &dev_hs, &hs2d, &zipf, "hs2d/zipf".to_string()),
        run_cell(&dir, &dev_hs, &hs2d, &sweep, "hs2d/sweep".to_string()),
        run_cell(&dir, &dev_hs, &hs2d, &pagesweep, "hs2d/pagesweep".to_string()),
        run_cell(&dir, &dev_scan, &scan, &pagesweep, "scan/pagesweep".to_string()),
        run_cell(&dir, &dev_kd, &kd, &zipf, "kdtree/zipf".to_string()),
        run_cell(&dir, &dev_knn, &knn, &kqueries, "knn/sweep".to_string()),
    ];

    // The planner-driven mixed cell: a catalog of the three 2D structures
    // reopened as an IndexSet per backend; execute_plan issues one
    // PrefetchHint per plan group (madvise under mmap, warm-read under
    // pread) before running it.
    {
        let mut cat = SnapshotCatalog::create(dir.file("cat")).expect("catalog");
        for (label, index) in
            [("hs", &hs2d as &dyn RangeIndex), ("kd", &kd as &dyn RangeIndex), ("sc", &scan)]
        {
            cat.add(label, index).expect("catalog add");
        }
        let cat = SnapshotCatalog::open(dir.file("cat")).expect("catalog reopen");
        let mixed: Vec<Query> = zipf.iter().zip(&pagesweep).flat_map(|(a, b)| [*a, *b]).collect();

        let mut walls = [Duration::ZERO; 2];
        let mut totals = Vec::new();
        let mut answers = Vec::new();
        for (i, backend) in [ReopenBackend::Pread, ReopenBackend::Mmap].into_iter().enumerate() {
            let set =
                IndexSet::from_catalog_as(&cat, CACHE_PAGES, backend).expect("from_catalog_as");
            let plan = set.plan(&mixed);
            assert_eq!(plan.unrouted(), 0, "the set covers every mixed query");
            let rep = set.execute_plan(&mixed, &plan, true);
            totals.push(rep.total);
            answers.push(rep.answers);
            walls[i] = best_of(TIMING_RUNS, || set.execute_plan(&mixed, &plan, false));
        }
        assert_eq!(answers[0], answers[1], "planner/mixed: answers identical across backends");
        assert_eq!(totals[0], totals[1], "planner/mixed: IO totals identical across backends");
        rows.push(Row {
            cell: "planner/mixed".to_string(),
            queries: mixed.len(),
            reads: totals[0].reads,
            pread_wall: walls[0],
            mmap_wall: walls[1],
        });
    }

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cell.clone(),
                format!("{}", r.queries),
                format!("{}", r.reads),
                format!("{:.0}", ns_per_query(r.pread_wall, r.queries)),
                format!("{:.0}", ns_per_query(r.mmap_wall, r.queries)),
                format!(
                    "{:.2}x",
                    r.pread_wall.as_nanos() as f64 / r.mmap_wall.as_nanos().max(1) as f64
                ),
            ]
        })
        .collect();
    print_table(
        "pread vs mmap reopen: model read IOs and wall ns/query (best-of-3)",
        &["cell", "queries", "read IOs", "pread ns/q", "mmap ns/q", "speedup"],
        &table,
    );

    // The wall gate: aggregated across cells (less flaky than per-cell),
    // active only off the 1-core containers where wall is pure noise.
    let pread_total: Duration = rows.iter().map(|r| r.pread_wall).sum();
    let mmap_total: Duration = rows.iter().map(|r| r.mmap_wall).sum();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if cores >= 2 {
        assert!(
            mmap_total <= pread_total,
            "mmap total wall {mmap_total:?} must not exceed pread total {pread_total:?} \
             ({cores} cores; answers and IO totals were bit-identical)"
        );
        println!(
            "\nWall gate: mmap {mmap_total:?} <= pread {pread_total:?} ({cores} cores) — PASS"
        );
    } else {
        println!(
            "\nWall gate: informational on 1 core — mmap {mmap_total:?} vs pread {pread_total:?}"
        );
    }
    println!(
        "Parity gates: answers and model read-IO totals bit-identical across memory, \
         pread, and mmap on every cell (including the planner-driven mixed batch)."
    );

    if smoke {
        let mut report = BenchReport::new("exp_mmap", smoke);
        for r in &rows {
            report
                .cell(r.cell.clone())
                .metric("queries", r.queries as f64)
                .metric("read_ios", r.reads as f64)
                .metric("pread_ns_per_q", ns_per_query(r.pread_wall, r.queries))
                .metric("mmap_ns_per_q", ns_per_query(r.mmap_wall, r.queries))
                .report_wall(r.mmap_wall);
        }
        report.write_default();
    }
}
