//! The CI read-IO regression gate over the smoke benches' JSON results.
//!
//! `bench_gate check` compares every gated bench's `BENCH_<name>.json`
//! against the committed `BENCH_baseline.json` (>2% read-IO regression on
//! any cell fails); `bench_gate check --gate-wall` additionally gates the
//! recorded wall-clock cells (regressions only, wide tolerance — opt in on
//! quiet hardware, CI leaves it off); `bench_gate update` regenerates the
//! baseline from the current results. Run the smoke benches first — ci.sh
//! sequences this.

use lcrs_bench::report::{bench_dir, check_baseline, update_baseline};

const TOLERANCE: f64 = 0.02;
/// Wall-clock tolerance for `--gate-wall`: wide on purpose — even a quiet
/// machine jitters far more than the deterministic IO counts do.
const WALL_TOLERANCE: f64 = 0.50;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate_wall = args.iter().any(|a| a == "--gate-wall");
    let dir = bench_dir();
    let outcome = match args.first().map(String::as_str) {
        Some("check") => check_baseline(&dir, TOLERANCE, gate_wall.then_some(WALL_TOLERANCE)),
        Some("update") => update_baseline(&dir),
        _ => {
            eprintln!("usage: bench_gate <check [--gate-wall] | update>");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(report) => println!("{report}"),
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}
