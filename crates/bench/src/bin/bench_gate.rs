//! The CI read-IO regression gate over the smoke benches' JSON results.
//!
//! `bench_gate check` compares every gated bench's `BENCH_<name>.json`
//! against the committed `BENCH_baseline.json` (>2% read-IO regression on
//! any cell fails); `bench_gate update` regenerates the baseline from the
//! current results. Run the smoke benches first — ci.sh sequences this.

use lcrs_bench::report::{bench_dir, check_baseline, update_baseline};

const TOLERANCE: f64 = 0.02;

fn main() {
    let mode = std::env::args().nth(1);
    let dir = bench_dir();
    let outcome = match mode.as_deref() {
        Some("check") => check_baseline(&dir, TOLERANCE),
        Some("update") => update_baseline(&dir),
        _ => {
            eprintln!("usage: bench_gate <check|update>");
            std::process::exit(2);
        }
    };
    match outcome {
        Ok(report) => println!("{report}"),
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}
