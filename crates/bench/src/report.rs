//! Machine-readable bench results + the read-IO regression gate.
//!
//! Every smoke-mode `exp_*` bench emits a `BENCH_<name>.json` at the repo
//! root through [`BenchReport`] — one record per experiment cell with its
//! numeric metrics (queries, read IOs, wall-clock, snapshot sizes…) — and
//! prints a one-line summary for the CI log. `ci.sh` then runs the
//! `bench_gate` binary, which compares the `read_ios` metric of every cell
//! against the committed `BENCH_baseline.json` and fails on a >2%
//! regression. Read-IO counts are gated by default: they are deterministic
//! (all workloads are seeded), while wall-clock is noise on shared 1-core
//! CI containers. Wall-clock is still *recorded* — benches emit a
//! [`WALL_METRIC`] cell via [`BenchCell::report_wall`] and the baseline
//! keeps a `"wall"` mirror — so `bench_gate check --gate-wall` can opt in
//! to a wide-tolerance, regressions-only wall gate on quiet hardware.
//! Refresh the baseline with `./ci.sh --update-baseline`.
//!
//! Everything here is std-only (hand-rolled JSON subset writer/parser), so
//! the gate binary builds without the workspace's bench dev-dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Benches whose smoke runs are gated against the baseline, in ci.sh order.
pub const GATED_BENCHES: [&str; 9] = [
    "exp_batched",
    "exp_parallel",
    "exp_persist",
    "exp_planner",
    "exp_shard",
    "exp_live",
    "exp_mmap",
    "exp_serve",
    "exp_lift",
];

/// The committed baseline file at the repo root.
pub const BASELINE_FILE: &str = "BENCH_baseline.json";

/// The gated metric: deterministic read-IO counts.
pub const READ_METRIC: &str = "read_ios";

/// The recorded-but-ungated-by-default wall-clock metric (whole nanoseconds),
/// written by [`BenchCell::report_wall`]; gated only by `--gate-wall`.
pub const WALL_METRIC: &str = "wall_ns";

/// Where bench JSON lives: `$LCRS_BENCH_DIR` if set, else the repo root
/// (two levels up from the lcrs-bench manifest).
pub fn bench_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("LCRS_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Path of one bench's result file inside `dir`.
pub fn result_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("BENCH_{bench}.json"))
}

/// One experiment cell: an id (e.g. `hs2d/Uniform/zipf`) plus its numeric
/// metrics in insertion order.
pub struct BenchCell {
    id: String,
    metrics: Vec<(String, f64)>,
}

impl BenchCell {
    /// Record one metric; returns `self` for chaining.
    pub fn metric(&mut self, key: &str, value: impl Into<f64>) -> &mut BenchCell {
        self.metrics.push((key.to_string(), value.into()));
        self
    }

    /// Record the cell's wall-clock under the canonical [`WALL_METRIC`]
    /// key (whole nanoseconds). Every smoke bench reports one so the wall
    /// column lands in every `BENCH_*.json`; it stays out of the default
    /// gate (see [`check_baseline`]).
    pub fn report_wall(&mut self, wall: std::time::Duration) -> &mut BenchCell {
        self.metric(WALL_METRIC, wall.as_nanos() as f64)
    }
}

/// A bench run's machine-readable results, written as `BENCH_<name>.json`.
pub struct BenchReport {
    name: String,
    smoke: bool,
    cells: Vec<BenchCell>,
}

impl BenchReport {
    pub fn new(name: &str, smoke: bool) -> BenchReport {
        BenchReport { name: name.to_string(), smoke, cells: Vec::new() }
    }

    /// Start a new cell (ids should be unique per report).
    pub fn cell(&mut self, id: impl Into<String>) -> &mut BenchCell {
        self.cells.push(BenchCell { id: id.into(), metrics: Vec::new() });
        self.cells.last_mut().unwrap()
    }

    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"bench\": {},\n  \"smoke\": {},\n  \"cells\": [",
            json_str(&self.name),
            self.smoke
        );
        for (i, c) in self.cells.iter().enumerate() {
            let _ =
                write!(s, "{}\n    {{\"id\": {}", if i > 0 { "," } else { "" }, json_str(&c.id));
            for (k, v) in &c.metrics {
                let _ = write!(s, ", {}: {}", json_str(k), json_num(*v));
            }
            let _ = write!(s, "}}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Write `BENCH_<name>.json` into [`bench_dir`] and print the one-line
    /// summary CI logs show. Returns the path written.
    pub fn write_default(&self) -> PathBuf {
        let path = result_path(&bench_dir(), &self.name);
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        let reads: f64 = self
            .cells
            .iter()
            .flat_map(|c| &c.metrics)
            .filter(|(k, _)| k == READ_METRIC)
            .map(|(_, v)| *v)
            .sum();
        println!(
            "[bench-json] {}: {} cells, {} total read IOs{} -> {}",
            self.name,
            self.cells.len(),
            reads as u64,
            if self.smoke { " (smoke)" } else { "" },
            path.display()
        );
        path
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// A JSON subset parser — enough for the files this module writes.
// ---------------------------------------------------------------------------

/// Parsed JSON value (objects keep key order via `BTreeMap` — order is
/// irrelevant to the gate).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document (objects, arrays, strings, numbers, booleans,
/// null; `\uXXXX` escapes limited to the BMP).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", ch as char, pos))
    }
}

/// Deepest container nesting `parse_value` will follow before returning a
/// typed error. The parser recurses per level, so an unbounded depth (a
/// corrupted or adversarial baseline file like `"[[[[…"`) would blow the
/// stack inside `bench_gate` instead of failing cleanly; real
/// `BENCH_*.json` files nest 4 levels deep.
pub const MAX_JSON_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_JSON_DEPTH} levels at offset {pos} (corrupt input?)"
        ));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                m.insert(key, parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("bad number at offset {start}"))
        }
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-decode multi-byte UTF-8 starting at c.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?;
                let ch = chunk.chars().next().ok_or("empty chunk")?;
                out.push(ch);
                *pos = start + ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------------
// The regression gate.
// ---------------------------------------------------------------------------

/// `cell id -> metric value`, extracted from a result file.
type ReadMap = BTreeMap<String, f64>;

/// One bench's extracted smoke cells: the gated read IOs plus the
/// recorded (default-ungated) wall-clock values.
struct ResultCells {
    reads: ReadMap,
    walls: ReadMap,
}

fn read_result(dir: &Path, bench: &str) -> Result<ResultCells, String> {
    let path = result_path(dir, bench);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("{}: {e} (run the smoke benches first)", path.display()))?;
    let json = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if json.get("smoke").and_then(|s| match s {
        Json::Bool(b) => Some(*b),
        _ => None,
    }) != Some(true)
    {
        return Err(format!(
            "{}: not a smoke-mode result; the gate only compares smoke runs",
            path.display()
        ));
    }
    let mut out = ResultCells { reads: ReadMap::new(), walls: ReadMap::new() };
    for cell in json.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
        let id = cell.get("id").and_then(Json::as_str).ok_or("cell without id")?;
        if let Some(reads) = cell.get(READ_METRIC).and_then(Json::as_f64) {
            out.reads.insert(id.to_string(), reads);
        }
        if let Some(wall) = cell.get(WALL_METRIC).and_then(Json::as_f64) {
            out.walls.insert(id.to_string(), wall);
        }
    }
    if out.reads.is_empty() {
        return Err(format!("{}: no {READ_METRIC} cells", path.display()));
    }
    Ok(out)
}

/// Compare every gated bench's current smoke results against the committed
/// baseline. `tolerance` is fractional (0.02 = 2%). Any read-IO cell off
/// baseline by more than the tolerance fails — regressions because they are
/// regressions, improvements because a stale-high baseline would mask the
/// next regression (the fix for either is `./ci.sh --update-baseline`).
///
/// `wall_tolerance` opts in to gating the recorded [`WALL_METRIC`] cells
/// too (`bench_gate check --gate-wall`): only *regressions* beyond the
/// (deliberately wide) tolerance fail, only for cells present in both the
/// baseline's `"wall"` mirror and the current run — wall-clock is noisy,
/// so an unexpectedly fast run is never an error. `None` leaves wall
/// recorded but ungated (the CI default).
///
/// Returns a printable summary, or a printable failure report.
pub fn check_baseline(
    dir: &Path,
    tolerance: f64,
    wall_tolerance: Option<f64>,
) -> Result<String, String> {
    let baseline_path = dir.join(BASELINE_FILE);
    let text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!("{}: {e} (create it with ./ci.sh --update-baseline)", baseline_path.display())
    })?;
    let baseline = parse_json(&text).map_err(|e| format!("{}: {e}", baseline_path.display()))?;
    let benches = match baseline.get("benches") {
        Some(Json::Obj(m)) => m,
        _ => return Err(format!("{}: missing \"benches\" object", baseline_path.display())),
    };
    let mut failures = Vec::new();
    let mut summary = Vec::new();
    for bench in GATED_BENCHES {
        let base = match benches.get(bench) {
            Some(Json::Obj(m)) => m,
            _ => {
                failures.push(format!(
                    "{bench}: missing from the baseline (refresh with ./ci.sh --update-baseline)"
                ));
                continue;
            }
        };
        let current = match read_result(dir, bench) {
            Ok(c) => c,
            Err(e) => {
                failures.push(e);
                continue;
            }
        };
        let mut regressions = 0usize;
        let mut improvements = 0usize;
        for (id, want) in base {
            let want = want.as_f64().unwrap_or(f64::NAN);
            match current.reads.get(id) {
                Some(&got) if got <= want * (1.0 + tolerance) => {
                    // An improvement beyond tolerance also fails: left
                    // unrefreshed, the stale-high baseline would let a
                    // later regression ride back up to it unnoticed.
                    if got < want * (1.0 - tolerance) {
                        improvements += 1;
                        failures.push(format!(
                            "{bench}/{id}: {got} read IOs vs baseline {want} \
                             ({:.1}% better than the {:.0}% tolerance) — lock in \
                             the win with ./ci.sh --update-baseline",
                            100.0 * (1.0 - got / want),
                            100.0 * tolerance
                        ));
                    }
                }
                Some(&got) => {
                    regressions += 1;
                    failures.push(format!(
                        "{bench}/{id}: {got} read IOs vs baseline {want} \
                         (+{:.1}% > {:.0}% tolerance)",
                        100.0 * (got / want - 1.0),
                        100.0 * tolerance
                    ));
                }
                None => failures.push(format!("{bench}/{id}: cell vanished from the smoke run")),
            }
        }
        for id in current.reads.keys() {
            if !base.contains_key(id) {
                failures.push(format!(
                    "{bench}/{id}: new cell not in the baseline \
                     (refresh with ./ci.sh --update-baseline)"
                ));
            }
        }
        // The opt-in wall gate: regressions only, cells present on both
        // sides only — see the function docs.
        let mut wall_regressions = 0usize;
        if let Some(wt) = wall_tolerance {
            let wall_base = baseline.get("wall").and_then(|w| w.get(bench));
            if let Some(Json::Obj(wall_base)) = wall_base {
                for (id, want) in wall_base {
                    let want = want.as_f64().unwrap_or(f64::NAN);
                    if let Some(&got) = current.walls.get(id) {
                        if got > want * (1.0 + wt) {
                            wall_regressions += 1;
                            failures.push(format!(
                                "{bench}/{id}: {got} ns wall vs baseline {want} \
                                 (+{:.1}% > {:.0}% wall tolerance)",
                                100.0 * (got / want - 1.0),
                                100.0 * wt
                            ));
                        }
                    }
                }
            } else if !current.walls.is_empty() {
                failures.push(format!(
                    "{bench}: wall cells present but no \"wall\" baseline \
                     (refresh with ./ci.sh --update-baseline)"
                ));
            }
        }
        summary.push(format!(
            "{bench}: {} cells vs baseline, {regressions} regressions, \
             {improvements} improved beyond tolerance{}",
            base.len(),
            if wall_tolerance.is_some() {
                format!(", {wall_regressions} wall regressions")
            } else {
                String::new()
            }
        ));
    }
    if failures.is_empty() {
        Ok(format!("[bench-gate] PASS\n{}", summary.join("\n")))
    } else {
        Err(format!("[bench-gate] FAIL\n{}", failures.join("\n")))
    }
}

/// Regenerate the baseline from the current smoke results: the gated
/// read-IO cells under `"benches"` plus a `"wall"` mirror of the recorded
/// wall-clock cells (ungated unless `--gate-wall`).
pub fn update_baseline(dir: &Path) -> Result<String, String> {
    let results: Vec<(&str, ResultCells)> = GATED_BENCHES
        .iter()
        .map(|b| read_result(dir, b).map(|c| (*b, c)))
        .collect::<Result<_, _>>()?;
    let mut s = String::from("{\n");
    s.push_str(
        "  \"note\": \"read-IO baseline for the smoke benches; the wall mirror is \
         not gated by default (noisy on CI; opt in with bench_gate check --gate-wall). \
         Refresh with ./ci.sh --update-baseline\",\n",
    );
    let reads: Vec<(&str, &ReadMap)> = results.iter().map(|(b, c)| (*b, &c.reads)).collect();
    let walls: Vec<(&str, &ReadMap)> =
        results.iter().filter(|(_, c)| !c.walls.is_empty()).map(|(b, c)| (*b, &c.walls)).collect();
    write_section(&mut s, "benches", &reads);
    s.push_str(",\n");
    write_section(&mut s, "wall", &walls);
    s.push_str("\n}\n");
    let path = dir.join(BASELINE_FILE);
    std::fs::write(&path, s).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(format!("[bench-gate] baseline refreshed -> {}", path.display()))
}

/// Write one `"name": {bench: {cell: value, …}, …}` baseline section
/// (no trailing newline or comma — the caller joins sections).
fn write_section(s: &mut String, name: &str, benches: &[(&str, &ReadMap)]) {
    let _ = write!(s, "  {}: {{", json_str(name));
    for (i, (bench, cells)) in benches.iter().enumerate() {
        let _ = write!(s, "{}\n    {}: {{", if i > 0 { "," } else { "" }, json_str(bench));
        for (j, (id, v)) in cells.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n      {}: {}",
                if j > 0 { "," } else { "" },
                json_str(id),
                json_num(*v)
            );
        }
        let _ = write!(s, "\n    }}");
    }
    s.push_str("\n  }");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_the_parser() {
        let mut rep = BenchReport::new("exp_test", true);
        rep.cell("a/b").metric(READ_METRIC, 42u32).metric("wall_s", 0.125);
        rep.cell("c \"quoted\"").metric(READ_METRIC, 7u32);
        let json = parse_json(&rep.to_json()).unwrap();
        assert_eq!(json.get("bench").and_then(Json::as_str), Some("exp_test"));
        assert_eq!(json.get("smoke"), Some(&Json::Bool(true)));
        let cells = json.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("id").and_then(Json::as_str), Some("a/b"));
        assert_eq!(cells[0].get(READ_METRIC).and_then(Json::as_f64), Some(42.0));
        assert_eq!(cells[0].get("wall_s").and_then(Json::as_f64), Some(0.125));
        assert_eq!(cells[1].get("id").and_then(Json::as_str), Some("c \"quoted\""));
    }

    #[test]
    fn parser_handles_the_grammar() {
        let v = parse_json(r#"{"a": [1, -2.5, 3e2], "b": {"c": null, "d": false}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(v.get("a").and_then(Json::as_arr).unwrap()[2], Json::Num(300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("x\ny"));
        assert!(parse_json("{").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json(r#"{"k": }"#).is_err());
        assert_eq!(parse_json(r#""héllo A""#).unwrap(), Json::Str("héllo A".to_string()));
    }

    #[test]
    fn parser_caps_nesting_depth_instead_of_blowing_the_stack() {
        // Regression: the parser recurses per nesting level; a corrupted
        // baseline like "[[[[…" used to overflow the stack inside
        // bench_gate instead of returning the typed Err it promises.
        let deep = "[".repeat(4096);
        let err = parse_json(&deep).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");
        let deep_objs = "{\"k\":".repeat(4096);
        let err = parse_json(&deep_objs).unwrap_err();
        assert!(err.contains("nesting deeper than"), "{err}");

        // At the cap exactly: still parses (the cap is generous; real
        // BENCH files nest 4 levels).
        let ok = format!("{}0{}", "[".repeat(MAX_JSON_DEPTH), "]".repeat(MAX_JSON_DEPTH));
        assert!(parse_json(&ok).is_ok());
        let too_deep =
            format!("{}0{}", "[".repeat(MAX_JSON_DEPTH + 1), "]".repeat(MAX_JSON_DEPTH + 1));
        assert!(parse_json(&too_deep).is_err());
    }

    fn write_result(dir: &Path, bench: &str, cells: &[(&str, f64)], smoke: bool) {
        write_result_wall(dir, bench, cells, smoke, None);
    }

    fn write_result_wall(
        dir: &Path,
        bench: &str,
        cells: &[(&str, f64)],
        smoke: bool,
        wall_ns: Option<f64>,
    ) {
        let mut rep = BenchReport::new(bench, smoke);
        for (id, reads) in cells {
            let cell = rep.cell(*id).metric(READ_METRIC, *reads);
            if let Some(ns) = wall_ns {
                cell.report_wall(std::time::Duration::from_nanos(ns as u64));
            }
        }
        std::fs::write(result_path(dir, bench), rep.to_json()).unwrap();
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let dir = std::env::temp_dir().join(format!("lcrs-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for bench in GATED_BENCHES {
            write_result(&dir, bench, &[("cell/a", 100.0), ("cell/b", 50.0)], true);
        }
        update_baseline(&dir).unwrap();
        assert!(check_baseline(&dir, 0.02, None).is_ok());

        // +1% on one cell: within the 2% tolerance.
        write_result(&dir, "exp_batched", &[("cell/a", 101.0), ("cell/b", 50.0)], true);
        assert!(check_baseline(&dir, 0.02, None).is_ok());

        // +5%: gate fails and names the offender.
        write_result(&dir, "exp_batched", &[("cell/a", 105.0), ("cell/b", 50.0)], true);
        let err = check_baseline(&dir, 0.02, None).unwrap_err();
        assert!(err.contains("exp_batched/cell/a"), "{err}");

        // -20%: an improvement beyond tolerance fails too — the baseline
        // must be refreshed so later regressions can't hide below it.
        write_result(&dir, "exp_batched", &[("cell/a", 80.0), ("cell/b", 50.0)], true);
        let err = check_baseline(&dir, 0.02, None).unwrap_err();
        assert!(err.contains("update-baseline"), "{err}");

        // A vanished cell fails; a new unbaselined cell fails.
        write_result(&dir, "exp_batched", &[("cell/a", 100.0)], true);
        assert!(check_baseline(&dir, 0.02, None).unwrap_err().contains("vanished"));
        write_result(
            &dir,
            "exp_batched",
            &[("cell/a", 100.0), ("cell/b", 50.0), ("cell/new", 1.0)],
            true,
        );
        assert!(check_baseline(&dir, 0.02, None).unwrap_err().contains("cell/new"));

        // Non-smoke results are rejected outright.
        write_result(&dir, "exp_batched", &[("cell/a", 100.0), ("cell/b", 50.0)], false);
        assert!(check_baseline(&dir, 0.02, None).unwrap_err().contains("smoke"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wall_cells_are_recorded_but_gated_only_on_request() {
        let dir = std::env::temp_dir().join(format!("lcrs-wall-gate-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for bench in GATED_BENCHES {
            write_result_wall(&dir, bench, &[("cell/a", 100.0)], true, Some(1_000_000.0));
        }
        update_baseline(&dir).unwrap();
        let baseline = std::fs::read_to_string(dir.join(BASELINE_FILE)).unwrap();
        let parsed = parse_json(&baseline).unwrap();
        assert_eq!(
            parsed.get("wall").and_then(|w| w.get("exp_mmap")).and_then(|b| b.get("cell/a")),
            Some(&Json::Num(1_000_000.0)),
            "the baseline must carry the wall mirror"
        );
        assert!(check_baseline(&dir, 0.02, Some(0.5)).is_ok());

        // A 3x wall blowup passes the default gate (wall ungated) but
        // fails the opt-in one, naming the cell.
        write_result_wall(&dir, "exp_mmap", &[("cell/a", 100.0)], true, Some(3_000_000.0));
        assert!(check_baseline(&dir, 0.02, None).is_ok(), "wall is ungated by default");
        let err = check_baseline(&dir, 0.02, Some(0.5)).unwrap_err();
        assert!(err.contains("exp_mmap/cell/a") && err.contains("wall"), "{err}");

        // A faster run never fails the wall gate (noise cuts both ways).
        write_result_wall(&dir, "exp_mmap", &[("cell/a", 100.0)], true, Some(100_000.0));
        assert!(check_baseline(&dir, 0.02, Some(0.5)).is_ok());

        // Wall cells without a wall baseline demand a refresh.
        let no_wall = baseline.replace("\"wall\"", "\"wall-renamed\"");
        std::fs::write(dir.join(BASELINE_FILE), no_wall).unwrap();
        let err = check_baseline(&dir, 0.02, Some(0.5)).unwrap_err();
        assert!(err.contains("update-baseline"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
