//! The shared mixed-workload oracle: ONE definition of the planner's
//! mixed batch construction — [`mixed_oracle`] for the base
//! halfplane/halfspace/k-NN mix, [`lifted_oracle`] for the six-class mix
//! adding the derived disk/aggregate/top-k legs of DESIGN.md §15 — used
//! by the planner test suite (`tests/engine_planner.rs`), the gated
//! `exp_planner` / `exp_lift` experiments, and the `planned_queries` /
//! `lifted_queries` examples. The consumers pass their own datasets and
//! counts (so the concrete query coefficients differ with the points),
//! but the class mix, coefficient ranges, seed schedule, and interleave
//! order live here once and cannot drift apart (DESIGN.md §10).

use lcrs_baselines::{ExternalKdTree, ExternalScan, ExternalScan3, StrRTree};
use lcrs_engine::{encode_sum, IndexSet, LiftedIndex, LiftedKind, Query};
use lcrs_extmem::DeviceHandle;
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs_halfspace::{DynamicHalfspace2, KnnStructure};
use lcrs_workloads::{
    aggregate_mixed, disk_mixed, halfplane_mixed, halfspace3_mixed, knn_mixed, topk_mixed,
};

/// Slope/offset range of the 2D halfplane leg (see
/// [`lcrs_workloads::halfplane_mixed`]).
const HP_SLOPE: i64 = 40;
/// Coefficient range of the 3D halfspace leg.
const HS_SLOPE: i64 = 24;
/// Upper bound on `k` for the k-NN leg.
const KNN_K_MAX: usize = 20;

/// The canonical mixed workload over one 2D + one 3D dataset:
/// `counts = (halfplane, halfspace, knn)` queries, legs seeded `seed`,
/// `seed + 1`, `seed + 2`, interleaved 3:1:1 on a fixed five-slot
/// schedule (legs that run dry fall back to the others, so the output
/// always holds exactly `counts.0 + counts.1 + counts.2` queries).
/// Deterministic in `(pts2, pts3, counts, seed)`.
pub fn mixed_oracle(
    pts2: &[(i64, i64)],
    pts3: &[(i64, i64, i64)],
    counts: (usize, usize, usize),
    seed: u64,
) -> Vec<Query> {
    let (n_hp, n_hs, n_knn) = counts;
    let hp = halfplane_mixed(pts2, n_hp, HP_SLOPE, seed)
        .into_iter()
        .map(|(m, c, inclusive)| Query::Halfplane { m, c, inclusive });
    let hs = halfspace3_mixed(pts3, n_hs, HS_SLOPE, seed + 1)
        .into_iter()
        .map(|(u, v, w, inclusive)| Query::Halfspace { u, v, w, inclusive });
    let kn = knn_mixed(pts2, n_knn, KNN_K_MAX, seed + 2).into_iter().map(|(x, y, k)| Query::Knn {
        x,
        y,
        k,
    });
    let (mut hp, mut hs, mut kn) = (hp.fuse(), hs.fuse(), kn.fuse());
    let mut out = Vec::with_capacity(n_hp + n_hs + n_knn);
    for i in 0.. {
        let q = match i % 5 {
            3 => hs.next().or_else(|| hp.next()).or_else(|| kn.next()),
            4 => kn.next().or_else(|| hp.next()).or_else(|| hs.next()),
            _ => hp.next().or_else(|| hs.next()).or_else(|| kn.next()),
        };
        match q {
            Some(q) => out.push(q),
            None => break,
        }
    }
    out
}

/// Radius bound of the disk leg (squared radii up to `LIFT_RMAX²`).
const LIFT_RMAX: i64 = 300;
/// Upper bound on `k` for the top-k leg.
const TOPK_K_MAX: usize = 16;

/// The *lifted* mixed workload of DESIGN.md §15: [`mixed_oracle`]'s three
/// base legs plus disk, count/sum, and top-k legs,
/// `counts = (halfplane, halfspace, knn, disk, aggregate, topk)`, the new
/// legs seeded `seed + 3`, `seed + 4`, `seed + 5` and spliced after the
/// base interleave on a fixed three-slot rotation (a dry leg falls back
/// to the others, so the output always holds exactly the requested total).
/// Deterministic in `(pts2, pts3, counts, seed)`.
pub fn lifted_oracle(
    pts2: &[(i64, i64)],
    pts3: &[(i64, i64, i64)],
    counts: (usize, usize, usize, usize, usize, usize),
    seed: u64,
) -> Vec<Query> {
    let (n_hp, n_hs, n_knn, n_disk, n_agg, n_topk) = counts;
    let base = mixed_oracle(pts2, pts3, (n_hp, n_hs, n_knn), seed);
    let dk = disk_mixed(pts2, n_disk, LIFT_RMAX, seed + 3)
        .into_iter()
        .map(|(x, y, r2, inclusive)| Query::Disk { x, y, r2, inclusive });
    let ag = aggregate_mixed(pts2, n_agg, HP_SLOPE, seed + 4).into_iter().map(
        |(m, c, inclusive, sum)| {
            if sum {
                Query::Sum { m, c, inclusive }
            } else {
                Query::Count { m, c, inclusive }
            }
        },
    );
    let tk = topk_mixed(pts2, n_topk, HP_SLOPE, TOPK_K_MAX, seed + 5)
        .into_iter()
        .map(|(m, c, k)| Query::TopK { m, c, k });
    let (mut dk, mut ag, mut tk) = (dk.fuse(), ag.fuse(), tk.fuse());
    let mut out = base;
    for i in 0.. {
        let q = match i % 3 {
            0 => dk.next().or_else(|| ag.next()).or_else(|| tk.next()),
            1 => ag.next().or_else(|| tk.next()).or_else(|| dk.next()),
            _ => tk.next().or_else(|| dk.next()).or_else(|| ag.next()),
        };
        match q {
            Some(q) => out.push(q),
            None => break,
        }
    }
    out
}

/// The measured probe sample paired with [`lifted_oracle`], mirroring
/// [`mixed_probes`] with all six legs present — the aggregate probes are
/// what populates the dual calibration's aggregate side
/// (`Calibration::agg_probes`), so a planner calibrated with this sample
/// prices `Query::Count` / `Query::Sum` with the annotated-path constant.
pub fn lifted_probes(pts2: &[(i64, i64)], pts3: &[(i64, i64, i64)], seed: u64) -> Vec<Query> {
    lifted_oracle(pts2, pts3, (8, 4, 4, 8, 8, 8), seed)
}

/// The measured probe sample paired with [`mixed_oracle`]: a small
/// (16 + 8 + 8)-query batch for `IndexSet::calibrate`. Keep its `seed`
/// disjoint from the workload's so calibration never sees the gated
/// queries (probe *order* is immaterial — each probe runs cold).
pub fn mixed_probes(pts2: &[(i64, i64)], pts3: &[(i64, i64, i64)], seed: u64) -> Vec<Query> {
    mixed_oracle(pts2, pts3, (16, 8, 8), seed)
}

/// Every `RangeIndex` structure in the workspace over one 2D + one 3D
/// dataset — the canonical fifteen-slot fixture shared by the planner
/// test suite and `exp_planner`/`exp_lift`. Slot order is load-bearing
/// and must stay in one place: `IndexSet::plan` breaks predicted-cost
/// ties toward earlier slots, so the scan-class structures sit last — a
/// tie must never break toward a scan (`lift-scan3`, whose disk path
/// scans its lifted file, sits after even the plain scans). The dynamic
/// structure inserts with tag = input index, keeping its answers
/// comparable to a brute-force reference.
pub fn full_index_set(
    h2: &DeviceHandle,
    h3: &DeviceHandle,
    pts2: &[(i64, i64)],
    pts3: &[(i64, i64, i64)],
) -> IndexSet {
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(h2, pts2, Hs2dConfig::default())));
    let pd: Vec<PointD<2>> = pts2.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    set.add(Box::new(PartitionTree::<2>::build(h2, &pd, PTreeConfig::default())));
    set.add(Box::new(ExternalKdTree::build(h2, pts2)));
    set.add(Box::new(StrRTree::build(h2, pts2)));
    let mut dynamic = DynamicHalfspace2::new(h2, Hs2dConfig::default());
    for (i, &(x, y)) in pts2.iter().enumerate() {
        dynamic.insert(x, y, i as u64);
    }
    set.add(Box::new(dynamic));
    set.add(Box::new(KnnStructure::build(h2, pts2, Hs3dConfig::default())));
    set.add(Box::new(HalfspaceRS3::build(h3, pts3, Hs3dConfig::default())));
    set.add(Box::new(HybridTree3::build(h3, pts3, HybridConfig::default())));
    set.add(Box::new(ShallowTree3::build(h3, pts3, ShallowConfig::default())));
    set.add(Box::new(LiftedIndex::build(h2, pts2, LiftedKind::Hs3d)));
    set.add(Box::new(LiftedIndex::build(h2, pts2, LiftedKind::Hybrid)));
    set.add(Box::new(LiftedIndex::build(h2, pts2, LiftedKind::Shallow)));
    set.add(Box::new(ExternalScan::build(h2, pts2)));
    set.add(Box::new(ExternalScan3::build(h3, pts3)));
    set.add(Box::new(LiftedIndex::build(h2, pts2, LiftedKind::Scan3)));
    set
}

/// Canonical answer form for cross-structure comparison: report queries
/// (halfplane, halfspace, disk) sort their id sets — structures report in
/// structure-specific order. Ranked answers (k-NN by distance, top-k by
/// `y − m·x`; ties by id) are already canonically ordered by every capable
/// structure, so their order is preserved and compared; aggregate answers
/// are scalars (count word, sum words), never sorted.
pub fn canon_answer(q: &Query, mut ids: Vec<u64>) -> Vec<u64> {
    if !(q.is_ranked() || q.is_aggregate()) {
        ids.sort_unstable();
    }
    ids
}

/// Host-side brute force in canonical form (sorted ids for reports,
/// `(distance, id)` order for k-NN), with `i128` widening so no
/// coefficient range overflows — ONE reference implementation shared by
/// the planner and sharding differential suites. Ids are input indices
/// (2D for halfplane/k-NN, 3D for halfspace).
pub fn brute_answer(q: &Query, pts2: &[(i64, i64)], pts3: &[(i64, i64, i64)]) -> Vec<u64> {
    match *q {
        Query::Halfplane { m, c, inclusive } => {
            let mut ids: Vec<u64> = pts2
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| {
                    let rhs = m as i128 * x as i128 + c as i128;
                    if inclusive {
                        y as i128 <= rhs
                    } else {
                        (y as i128) < rhs
                    }
                })
                .map(|(i, _)| i as u64)
                .collect();
            ids.sort_unstable();
            ids
        }
        Query::Halfspace { u, v, w, inclusive } => {
            let mut ids: Vec<u64> = pts3
                .iter()
                .enumerate()
                .filter(|(_, &(x, y, z))| {
                    let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                    if inclusive {
                        z as i128 <= rhs
                    } else {
                        (z as i128) < rhs
                    }
                })
                .map(|(i, _)| i as u64)
                .collect();
            ids.sort_unstable();
            ids
        }
        Query::Knn { x, y, k } => {
            let mut d: Vec<(i128, u64)> = pts2
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (dx, dy) = (x as i128 - a as i128, y as i128 - b as i128);
                    (dx * dx + dy * dy, i as u64)
                })
                .collect();
            d.sort_unstable();
            d.into_iter().take(k).map(|(_, i)| i).collect()
        }
        Query::Disk { x, y, r2, inclusive } => {
            let mut ids: Vec<u64> = pts2
                .iter()
                .enumerate()
                .filter(|(_, &(px, py))| {
                    let (dx, dy) = (x as i128 - px as i128, y as i128 - py as i128);
                    let d2 = dx * dx + dy * dy;
                    if inclusive {
                        d2 <= r2 as i128
                    } else {
                        d2 < r2 as i128
                    }
                })
                .map(|(i, _)| i as u64)
                .collect();
            ids.sort_unstable();
            ids
        }
        Query::Count { m, c, inclusive } => {
            vec![below2(pts2, m, c, inclusive).count() as u64]
        }
        Query::Sum { m, c, inclusive } => {
            encode_sum(below2(pts2, m, c, inclusive).map(|(_, (x, y))| x as i128 + y as i128).sum())
        }
        Query::TopK { m, c, k } => {
            let mut cand: Vec<(i128, u64)> = pts2
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| (y as i128 - m as i128 * x as i128, i as u64))
                .filter(|&(key, _)| key <= c as i128)
                .collect();
            cand.sort_unstable();
            cand.into_iter().take(k).map(|(_, i)| i).collect()
        }
    }
}

/// The 2D points below `y = m·x + c` with their input indices — the one
/// membership predicate the halfplane-derived brute arms share.
fn below2(
    pts2: &[(i64, i64)],
    m: i64,
    c: i64,
    inclusive: bool,
) -> impl Iterator<Item = (usize, (i64, i64))> + '_ {
    pts2.iter()
        .enumerate()
        .filter(move |(_, &(x, y))| {
            let rhs = m as i128 * x as i128 + c as i128;
            if inclusive {
                y as i128 <= rhs
            } else {
                (y as i128) < rhs
            }
        })
        .map(|(i, &p)| (i, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_workloads::{points2, points3, Dist2, Dist3};

    #[test]
    fn oracle_is_deterministic_and_complete() {
        let pts2 = points2(Dist2::Uniform, 200, 1000, 5);
        let pts3 = points3(Dist3::Uniform, 100, 1 << 12, 6);
        let a = mixed_oracle(&pts2, &pts3, (30, 12, 8), 71);
        let b = mixed_oracle(&pts2, &pts3, (30, 12, 8), 71);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let n = |f: fn(&Query) -> bool| a.iter().filter(|q| f(q)).count();
        assert_eq!(n(|q| matches!(q, Query::Halfplane { .. })), 30);
        assert_eq!(n(|q| matches!(q, Query::Halfspace { .. })), 12);
        assert_eq!(n(|q| matches!(q, Query::Knn { .. })), 8);
        // The five-slot schedule interleaves from the start: the first five
        // queries hold all three classes.
        assert!(matches!(a[3], Query::Halfspace { .. }));
        assert!(matches!(a[4], Query::Knn { .. }));
    }

    #[test]
    fn canon_sorts_reports_but_preserves_knn_order() {
        let report = Query::Halfplane { m: 1, c: 0, inclusive: false };
        assert_eq!(canon_answer(&report, vec![3, 1, 2]), vec![1, 2, 3]);
        let knn = Query::Knn { x: 0, y: 0, k: 3 };
        assert_eq!(canon_answer(&knn, vec![3, 1, 2]), vec![3, 1, 2]);
        // Derived classes: disks sort like reports, ranked and aggregate
        // answers are order-preserving (top-k rank, sum's word split).
        let disk = Query::Disk { x: 0, y: 0, r2: 4, inclusive: true };
        assert_eq!(canon_answer(&disk, vec![3, 1, 2]), vec![1, 2, 3]);
        let topk = Query::TopK { m: 0, c: 0, k: 3 };
        assert_eq!(canon_answer(&topk, vec![3, 1, 2]), vec![3, 1, 2]);
        let sum = Query::Sum { m: 0, c: 0, inclusive: true };
        assert_eq!(canon_answer(&sum, vec![7, 3]), vec![7, 3]);
    }

    #[test]
    fn lifted_oracle_is_deterministic_and_complete() {
        let pts2 = points2(Dist2::Uniform, 200, 1000, 5);
        let pts3 = points3(Dist3::Uniform, 100, 1 << 12, 6);
        let counts = (12, 6, 6, 10, 10, 6);
        let a = lifted_oracle(&pts2, &pts3, counts, 71);
        assert_eq!(a, lifted_oracle(&pts2, &pts3, counts, 71));
        assert_eq!(a.len(), 50);
        // The base interleave is exactly mixed_oracle's — the new legs
        // splice after it without disturbing pinned prefixes.
        assert_eq!(a[..24], mixed_oracle(&pts2, &pts3, (12, 6, 6), 71)[..]);
        let n = |f: fn(&Query) -> bool| a.iter().filter(|q| f(q)).count();
        assert_eq!(n(|q| matches!(q, Query::Disk { .. })), 10);
        assert_eq!(n(|q| q.is_aggregate()), 10);
        assert_eq!(n(|q| matches!(q, Query::TopK { .. })), 6);
        assert_eq!(n(|q| matches!(q, Query::Count { .. })), 5);
        assert_eq!(n(|q| matches!(q, Query::Sum { .. })), 5);
    }

    #[test]
    fn brute_answers_the_derived_classes_exactly() {
        let pts2 = vec![(0, 0), (3, 4), (0, 5), (-2, -2)];
        let disk = Query::Disk { x: 0, y: 0, r2: 25, inclusive: true };
        assert_eq!(brute_answer(&disk, &pts2, &[]), vec![0, 1, 2, 3]);
        let strict = Query::Disk { x: 0, y: 0, r2: 25, inclusive: false };
        assert_eq!(brute_answer(&strict, &pts2, &[]), vec![0, 3]);
        // Count/Sum below y <= 0·x + 0: points (0,0) and (-2,-2).
        let count = Query::Count { m: 0, c: 0, inclusive: true };
        assert_eq!(brute_answer(&count, &pts2, &[]), vec![2]);
        let sum = Query::Sum { m: 0, c: 0, inclusive: true };
        assert_eq!(brute_answer(&sum, &pts2, &[]), encode_sum(-4));
        // Top-k by key y − 0·x ≤ 5, two lowest: (-2,-2) key −4, (0,0) key 0.
        let topk = Query::TopK { m: 0, c: 5, k: 2 };
        assert_eq!(brute_answer(&topk, &pts2, &[]), vec![3, 0]);
    }
}
