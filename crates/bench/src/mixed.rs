//! The shared mixed-workload oracle: ONE definition of the planner's
//! mixed halfplane/halfspace/k-NN batch construction, used by the
//! planner test suite (`tests/engine_planner.rs`), the gated
//! `exp_planner` experiment, and the `planned_queries` example. The
//! consumers pass their own datasets and counts (so the concrete query
//! coefficients differ with the points), but the class mix, coefficient
//! ranges, seed schedule, and interleave order live here once and
//! cannot drift apart (DESIGN.md §10).

use lcrs_baselines::{ExternalKdTree, ExternalScan, ExternalScan3, StrRTree};
use lcrs_engine::{IndexSet, Query};
use lcrs_extmem::DeviceHandle;
use lcrs_geom::point::PointD;
use lcrs_halfspace::hs2d::{HalfspaceRS2, Hs2dConfig};
use lcrs_halfspace::hs3d::{HalfspaceRS3, Hs3dConfig};
use lcrs_halfspace::ptree::{PTreeConfig, PartitionTree};
use lcrs_halfspace::tradeoff::{HybridConfig, HybridTree3, ShallowConfig, ShallowTree3};
use lcrs_halfspace::{DynamicHalfspace2, KnnStructure};
use lcrs_workloads::{halfplane_mixed, halfspace3_mixed, knn_mixed};

/// Slope/offset range of the 2D halfplane leg (see
/// [`lcrs_workloads::halfplane_mixed`]).
const HP_SLOPE: i64 = 40;
/// Coefficient range of the 3D halfspace leg.
const HS_SLOPE: i64 = 24;
/// Upper bound on `k` for the k-NN leg.
const KNN_K_MAX: usize = 20;

/// The canonical mixed workload over one 2D + one 3D dataset:
/// `counts = (halfplane, halfspace, knn)` queries, legs seeded `seed`,
/// `seed + 1`, `seed + 2`, interleaved 3:1:1 on a fixed five-slot
/// schedule (legs that run dry fall back to the others, so the output
/// always holds exactly `counts.0 + counts.1 + counts.2` queries).
/// Deterministic in `(pts2, pts3, counts, seed)`.
pub fn mixed_oracle(
    pts2: &[(i64, i64)],
    pts3: &[(i64, i64, i64)],
    counts: (usize, usize, usize),
    seed: u64,
) -> Vec<Query> {
    let (n_hp, n_hs, n_knn) = counts;
    let hp = halfplane_mixed(pts2, n_hp, HP_SLOPE, seed)
        .into_iter()
        .map(|(m, c, inclusive)| Query::Halfplane { m, c, inclusive });
    let hs = halfspace3_mixed(pts3, n_hs, HS_SLOPE, seed + 1)
        .into_iter()
        .map(|(u, v, w, inclusive)| Query::Halfspace { u, v, w, inclusive });
    let kn = knn_mixed(pts2, n_knn, KNN_K_MAX, seed + 2).into_iter().map(|(x, y, k)| Query::Knn {
        x,
        y,
        k,
    });
    let (mut hp, mut hs, mut kn) = (hp.fuse(), hs.fuse(), kn.fuse());
    let mut out = Vec::with_capacity(n_hp + n_hs + n_knn);
    for i in 0.. {
        let q = match i % 5 {
            3 => hs.next().or_else(|| hp.next()).or_else(|| kn.next()),
            4 => kn.next().or_else(|| hp.next()).or_else(|| hs.next()),
            _ => hp.next().or_else(|| hs.next()).or_else(|| kn.next()),
        };
        match q {
            Some(q) => out.push(q),
            None => break,
        }
    }
    out
}

/// The measured probe sample paired with [`mixed_oracle`]: a small
/// (16 + 8 + 8)-query batch for `IndexSet::calibrate`. Keep its `seed`
/// disjoint from the workload's so calibration never sees the gated
/// queries (probe *order* is immaterial — each probe runs cold).
pub fn mixed_probes(pts2: &[(i64, i64)], pts3: &[(i64, i64, i64)], seed: u64) -> Vec<Query> {
    mixed_oracle(pts2, pts3, (16, 8, 8), seed)
}

/// Every `RangeIndex` structure in the workspace over one 2D + one 3D
/// dataset — the canonical eleven-slot fixture shared by the planner test
/// suite and `exp_planner`. Slot order is load-bearing and must stay in
/// one place: `IndexSet::plan` breaks predicted-cost ties toward earlier
/// slots, so the scan-class structures sit last — a tie must never break
/// toward a scan. The dynamic structure inserts with tag = input index,
/// keeping its answers comparable to a brute-force reference.
pub fn full_index_set(
    h2: &DeviceHandle,
    h3: &DeviceHandle,
    pts2: &[(i64, i64)],
    pts3: &[(i64, i64, i64)],
) -> IndexSet {
    let mut set = IndexSet::new();
    set.add(Box::new(HalfspaceRS2::build(h2, pts2, Hs2dConfig::default())));
    let pd: Vec<PointD<2>> = pts2.iter().map(|&(x, y)| PointD::new([x, y])).collect();
    set.add(Box::new(PartitionTree::<2>::build(h2, &pd, PTreeConfig::default())));
    set.add(Box::new(ExternalKdTree::build(h2, pts2)));
    set.add(Box::new(StrRTree::build(h2, pts2)));
    let mut dynamic = DynamicHalfspace2::new(h2, Hs2dConfig::default());
    for (i, &(x, y)) in pts2.iter().enumerate() {
        dynamic.insert(x, y, i as u64);
    }
    set.add(Box::new(dynamic));
    set.add(Box::new(KnnStructure::build(h2, pts2, Hs3dConfig::default())));
    set.add(Box::new(HalfspaceRS3::build(h3, pts3, Hs3dConfig::default())));
    set.add(Box::new(HybridTree3::build(h3, pts3, HybridConfig::default())));
    set.add(Box::new(ShallowTree3::build(h3, pts3, ShallowConfig::default())));
    set.add(Box::new(ExternalScan::build(h2, pts2)));
    set.add(Box::new(ExternalScan3::build(h3, pts3)));
    set
}

/// Canonical answer form for cross-structure comparison: report queries
/// sort their id sets (structures report in structure-specific order);
/// k-NN answers are already canonically ordered (distance, ties by id)
/// by every capable structure, so their order is preserved and compared.
pub fn canon_answer(q: &Query, mut ids: Vec<u64>) -> Vec<u64> {
    if !matches!(q, Query::Knn { .. }) {
        ids.sort_unstable();
    }
    ids
}

/// Host-side brute force in canonical form (sorted ids for reports,
/// `(distance, id)` order for k-NN), with `i128` widening so no
/// coefficient range overflows — ONE reference implementation shared by
/// the planner and sharding differential suites. Ids are input indices
/// (2D for halfplane/k-NN, 3D for halfspace).
pub fn brute_answer(q: &Query, pts2: &[(i64, i64)], pts3: &[(i64, i64, i64)]) -> Vec<u64> {
    match *q {
        Query::Halfplane { m, c, inclusive } => {
            let mut ids: Vec<u64> = pts2
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| {
                    let rhs = m as i128 * x as i128 + c as i128;
                    if inclusive {
                        y as i128 <= rhs
                    } else {
                        (y as i128) < rhs
                    }
                })
                .map(|(i, _)| i as u64)
                .collect();
            ids.sort_unstable();
            ids
        }
        Query::Halfspace { u, v, w, inclusive } => {
            let mut ids: Vec<u64> = pts3
                .iter()
                .enumerate()
                .filter(|(_, &(x, y, z))| {
                    let rhs = u as i128 * x as i128 + v as i128 * y as i128 + w as i128;
                    if inclusive {
                        z as i128 <= rhs
                    } else {
                        (z as i128) < rhs
                    }
                })
                .map(|(i, _)| i as u64)
                .collect();
            ids.sort_unstable();
            ids
        }
        Query::Knn { x, y, k } => {
            let mut d: Vec<(i128, u64)> = pts2
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let (dx, dy) = (x as i128 - a as i128, y as i128 - b as i128);
                    (dx * dx + dy * dy, i as u64)
                })
                .collect();
            d.sort_unstable();
            d.into_iter().take(k).map(|(_, i)| i).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrs_workloads::{points2, points3, Dist2, Dist3};

    #[test]
    fn oracle_is_deterministic_and_complete() {
        let pts2 = points2(Dist2::Uniform, 200, 1000, 5);
        let pts3 = points3(Dist3::Uniform, 100, 1 << 12, 6);
        let a = mixed_oracle(&pts2, &pts3, (30, 12, 8), 71);
        let b = mixed_oracle(&pts2, &pts3, (30, 12, 8), 71);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        let n = |f: fn(&Query) -> bool| a.iter().filter(|q| f(q)).count();
        assert_eq!(n(|q| matches!(q, Query::Halfplane { .. })), 30);
        assert_eq!(n(|q| matches!(q, Query::Halfspace { .. })), 12);
        assert_eq!(n(|q| matches!(q, Query::Knn { .. })), 8);
        // The five-slot schedule interleaves from the start: the first five
        // queries hold all three classes.
        assert!(matches!(a[3], Query::Halfspace { .. }));
        assert!(matches!(a[4], Query::Knn { .. }));
    }

    #[test]
    fn canon_sorts_reports_but_preserves_knn_order() {
        let report = Query::Halfplane { m: 1, c: 0, inclusive: false };
        assert_eq!(canon_answer(&report, vec![3, 1, 2]), vec![1, 2, 3]);
        let knn = Query::Knn { x: 0, y: 0, k: 3 };
        assert_eq!(canon_answer(&knn, vec![3, 1, 2]), vec![3, 1, 2]);
    }
}
