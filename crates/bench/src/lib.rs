//! # lcrs-bench — shared helpers for the experiment harness
//!
//! Each `benches/exp_*.rs` target (plain `main`, `harness = false`)
//! regenerates one table or figure of the paper; this crate holds the
//! common table printing and curve-fitting utilities, the shared
//! [`mixed`] oracle-workload definition, and the machine-readable
//! [`report`] layer (`BENCH_<name>.json` emission and the `bench_gate`
//! read-IO regression gate that ci.sh runs).

pub mod mixed;
pub mod report;

pub use mixed::{
    brute_answer, canon_answer, full_index_set, lifted_oracle, lifted_probes, mixed_oracle,
    mixed_probes,
};
pub use report::{BenchReport, Json};

/// Render an aligned text table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let ncol = header.len();
    let mut w: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), ncol, "row arity");
        for (i, c) in r.iter().enumerate() {
            w[i] = w[i].max(c.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:>width$} |", c, width = w[i]));
        }
        println!("{s}");
    };
    line(header.iter().map(|s| s.to_string()).collect());
    println!("|{}|", w.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for r in rows {
        line(r.clone());
    }
}

/// Least-squares slope of log(y) over log(x): the growth exponent of a
/// measured curve (used to check e.g. the n^{1-1/d} shape of Theorem 5.2).
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| **x > 0.0 && **y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Mean of a sample.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// p-th percentile (0..=100) of a sample.
pub fn percentile(v: &[f64], p: f64) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
    s[idx.min(s.len() - 1)]
}

/// Wall-clock helper.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_power_law_is_exponent() {
        let xs: Vec<f64> = (1..=10).map(|i| (i * i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        assert!((loglog_slope(&xs, &ys) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_and_mean() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&v), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
    }
}
